package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/cluster"
	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Sharded multi-instance clustering: consistent-hash placement of published
// leaves across somad instances (internal/cluster), membership via a static
// seed list plus gossip-style liveness over soma.peer.ping, scatter-gather
// reads, and ring-epoch-stamped handoff on membership change.
//
// The correctness invariant is deliberately asymmetric:
//
//   - WRITES are placed: a publish whose shard key is owned by a peer is
//     forwarded there (one hop, soma.publish.local), falling back to local
//     ingest when the owner is unreachable — an acked publish is never
//     dropped because of cluster state.
//   - READS scatter: soma.query / soma.series / soma.alert.list fan out to
//     every live member and merge, so data is found wherever it was ingested.
//     Placement is a load-balancing optimization, never a correctness
//     requirement — which is what makes rebalance safe to interrupt (the
//     sever-mid-rebalance chaos scenario) without a loss window.
//
// Handoff copies mis-placed leaves to their owner after a membership change;
// frames are stamped with the sender's ring epoch and rejected when it does
// not match the receiver's, so two diverged views never exchange data placed
// by different rings — the sender retries after gossip converges. Handed-off
// leaves are not deleted at the source (in-memory stores have no tombstones);
// the scatter merge deduplicates by path.

var (
	telPeersAlive      = telemetry.Default().Gauge("cluster.peers.alive")
	telPeersKnown      = telemetry.Default().Gauge("cluster.peers.known")
	telRingChanges     = telemetry.Default().Counter("cluster.ring.changes")
	telForwards        = telemetry.Default().Counter("cluster.publish.forwards")
	telForwardFallback = telemetry.Default().Counter("cluster.publish.forward_fallbacks")
	telHandoffLeaves   = telemetry.Default().Counter("cluster.handoff.leaves_sent")
	telHandoffRecv     = telemetry.Default().Counter("cluster.handoff.frames_received")
	telHandoffStale    = telemetry.Default().Counter("cluster.handoff.rejected_stale")
	telScatterFanouts  = telemetry.Default().Counter("cluster.scatter.fanouts")
	telScatterLatency  = telemetry.Default().Histogram("cluster.scatter.latency")
)

// Cluster RPC names. The ".local" variants answer from this instance's own
// state only — they are what scatter-gather fans out to (and what a routing
// client polls per shard), so a scattered read can never recurse.
const (
	RPCPeerPing        = "soma.peer.ping"
	RPCRing            = "soma.ring"
	RPCHandoff         = "soma.handoff"
	RPCPublishLocal    = "soma.publish.local"
	RPCQueryLocal      = "soma.query.local"
	RPCQueryDeltaLocal = "soma.query.delta.local"
	RPCSeriesLocal     = "soma.series.local"
	RPCAlertListLocal  = "soma.alert.list.local"
)

// ErrStaleRingEpoch rejects a handoff stamped by a ring this instance does
// not currently hold.
var ErrStaleRingEpoch = errors.New("soma: handoff ring epoch is stale")

// ClusterConfig configures a service's membership in a sharded cluster.
type ClusterConfig struct {
	// SelfID labels this instance in health panels; defaults to its address.
	SelfID string
	// Peers is the static seed list: addresses of other instances (self is
	// filtered out). Further members are learned by gossip.
	Peers []string
	// Vnodes per member on the hash ring; 0 = cluster.DefaultVnodes. Every
	// member must agree — the value is gossiped in soma.ring so routing
	// clients build the identical ring.
	Vnodes int
	// PingInterval is the liveness cadence; 0 = 250ms.
	PingInterval time.Duration
	// PingMisses consecutive failures mark a peer dead; 0 = 3.
	PingMisses int
	// ScatterParallel bounds concurrent peer calls per scattered read;
	// 0 = 4.
	ScatterParallel int
	// Policy overrides the peer call policy (forwards, scatter, handoff,
	// pings). nil = peerCallPolicy().
	Policy *mercury.CallPolicy
}

func (c *ClusterConfig) defaults() {
	if c.PingInterval <= 0 {
		c.PingInterval = 250 * time.Millisecond
	}
	if c.ScatterParallel <= 0 {
		c.ScatterParallel = 4
	}
	if c.Policy == nil {
		c.Policy = peerCallPolicy()
	}
}

// peerCallPolicy is the default policy for instance-to-instance calls:
// short attempts with one retry (the liveness tracker, not the transport,
// decides when a peer is gone) and a per-endpoint breaker so a severed peer
// fails fast instead of holding scattered reads hostage. Peer RPCs are all
// safe to re-send: reads trivially, forwards and handoffs because ingest is
// a last-writer-wins merge of identical payloads.
func peerCallPolicy() *mercury.CallPolicy {
	return &mercury.CallPolicy{
		ConnectTimeout:   time.Second,
		AttemptTimeout:   500 * time.Millisecond,
		MaxRetries:       1,
		Backoff:          mercury.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Idempotent:       func(string) bool { return true },
		FailureThreshold: 4,
		OpenFor:          200 * time.Millisecond,
	}
}

// svcCluster is a Service's cluster runtime: tracker + ring, cached peer
// endpoints, and the liveness/rebalance loops.
type svcCluster struct {
	svc     *Service
	cfg     ClusterConfig
	self    cluster.Member
	tracker *cluster.Tracker

	epMu sync.Mutex
	eps  map[string]*mercury.Endpoint

	kick chan struct{} // rebalance trigger (membership changed)
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// JoinCluster turns a listening service into a cluster member: it seeds the
// membership tracker, starts the liveness pinger and the rebalance loop, and
// flips publishes/reads into placed/scattered mode. Call it once, after
// Listen (peers dial back the listen address).
func (s *Service) JoinCluster(cfg ClusterConfig) error {
	addrs := s.Addrs()
	if len(addrs) == 0 {
		return errors.New("soma: JoinCluster before Listen")
	}
	if s.cfg.Shared {
		return errors.New("soma: clustering is not supported with a shared instance")
	}
	if s.cl.Load() != nil {
		return errors.New("soma: already clustered")
	}
	cfg.defaults()
	self := cluster.Member{ID: cfg.SelfID, Addr: addrs[0]}
	cl := &svcCluster{
		svc:     s,
		cfg:     cfg,
		self:    self,
		tracker: cluster.NewTracker(self, cfg.Vnodes, cfg.PingMisses),
		eps:     map[string]*mercury.Endpoint{},
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	cl.self = cl.tracker.Self() // ID defaulted to addr by the tracker
	for _, p := range cfg.Peers {
		cl.tracker.Add(cluster.Member{Addr: p})
	}
	if !s.cl.CompareAndSwap(nil, cl) {
		return errors.New("soma: already clustered")
	}
	cl.updateGauges()
	cl.wg.Add(2)
	go cl.pingLoop()
	go cl.rebalanceLoop()
	return nil
}

// ClusterRing reports the current ring epoch and live member addresses
// (nil ring when the service is not clustered).
func (s *Service) ClusterRing() (epoch uint64, members []cluster.Member) {
	cl := s.cl.Load()
	if cl == nil {
		return 0, nil
	}
	ring := cl.tracker.Ring()
	return ring.Epoch(), ring.Members()
}

// shutdown stops the cluster loops; called from Service.Close before the
// engine closes so in-flight peer calls get their cancellation from the
// engine teardown, not the other way around.
func (cl *svcCluster) shutdown() {
	cl.once.Do(func() { close(cl.stop) })
	cl.wg.Wait()
}

// active reports whether scattered/placed mode is on: at least one live
// peer besides self.
func (cl *svcCluster) active() bool {
	return cl.tracker.Ring().Len() >= 2
}

func (cl *svcCluster) endpoint(addr string) (*mercury.Endpoint, error) {
	cl.epMu.Lock()
	defer cl.epMu.Unlock()
	if ep := cl.eps[addr]; ep != nil {
		return ep, nil
	}
	ep, err := cl.svc.engine.LookupPolicy(addr, cl.cfg.Policy)
	if err != nil {
		return nil, err
	}
	cl.eps[addr] = ep
	return ep, nil
}

// peerAddrs returns the live peer addresses (ring members minus self),
// sorted — the deterministic scatter/merge order.
func (cl *svcCluster) peerAddrs() []string {
	members := cl.tracker.Ring().Members()
	out := make([]string, 0, len(members))
	for _, m := range members {
		if m.Addr != cl.self.Addr {
			out = append(out, m.Addr)
		}
	}
	return out // ring members are already sorted by address
}

func (cl *svcCluster) updateGauges() {
	peers, alive := cl.tracker.Snapshot()
	telPeersKnown.Set(int64(len(peers) + 1))
	telPeersAlive.Set(int64(alive))
}

func (cl *svcCluster) kickRebalance() {
	select {
	case cl.kick <- struct{}{}:
	default:
	}
}

// ---------------------------------------------------------------------------
// Liveness: the ping loop.

func (cl *svcCluster) pingLoop() {
	defer cl.wg.Done()
	tick := time.NewTicker(cl.cfg.PingInterval)
	defer tick.Stop()
	for {
		select {
		case <-cl.stop:
			return
		case <-tick.C:
		}
		peers, _ := cl.tracker.Snapshot()
		changed := atomic.Bool{}
		var wg sync.WaitGroup
		for _, p := range peers {
			wg.Add(1)
			go func(m cluster.Member) {
				defer wg.Done()
				if cl.pingOne(m) {
					changed.Store(true)
				}
			}(p.Member)
		}
		wg.Wait()
		cl.updateGauges()
		if changed.Load() {
			telRingChanges.Inc()
			cl.kickRebalance()
		}
	}
}

// pingOne exchanges one soma.peer.ping with a peer and folds the outcome
// (plus any gossiped members) into the tracker. Returns true when the alive
// set changed.
func (cl *svcCluster) pingOne(m cluster.Member) bool {
	ep, err := cl.endpoint(m.Addr)
	if err != nil {
		return cl.tracker.ReportFailure(m.Addr)
	}
	req := conduit.NewNode()
	req.SetString("addr", cl.self.Addr)
	req.SetString("id", cl.self.ID)
	req.SetInt("epoch", int64(cl.tracker.Ring().Epoch()))
	timeout := 2 * cl.cfg.PingInterval
	if timeout < 500*time.Millisecond {
		timeout = 500 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	out, err := ep.Call(ctx, RPCPeerPing, req.EncodeBinary())
	cancel()
	if err != nil {
		return cl.tracker.ReportFailure(m.Addr)
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return cl.tracker.ReportFailure(m.Addr)
	}
	return cl.tracker.ReportSuccess(m.Addr, decodeRingMembers(resp))
}

// ringFrame encodes this instance's membership view: the ring epoch, the
// vnode count (so routing clients build the identical ring), and the live
// members. soma.peer.ping and soma.ring both answer with it.
func (cl *svcCluster) ringFrame() []byte {
	ring := cl.tracker.Ring()
	resp := conduit.NewNode()
	resp.SetInt("epoch", int64(ring.Epoch()))
	resp.SetInt("vnodes", int64(cl.vnodes()))
	resp.SetString("self", cl.self.Addr)
	for i, m := range ring.Members() {
		base := fmt.Sprintf("members/%03d", i)
		resp.SetString(base+"/addr", m.Addr)
		resp.SetString(base+"/id", m.ID)
	}
	return resp.EncodeBinary()
}

func (cl *svcCluster) vnodes() int {
	if cl.cfg.Vnodes > 0 {
		return cl.cfg.Vnodes
	}
	return cluster.DefaultVnodes
}

func decodeRingMembers(resp *conduit.Node) []cluster.Member {
	list, ok := resp.Get("members")
	if !ok {
		return nil
	}
	var out []cluster.Member
	for _, name := range list.ChildNames() {
		sub := list.Child(name)
		m := cluster.Member{}
		m.Addr, _ = sub.StringVal("addr")
		m.ID, _ = sub.StringVal("id")
		if m.Addr != "" {
			out = append(out, m)
		}
	}
	return out
}

// handlePeerPing serves liveness probes: hearing from a peer proves it
// alive (and may introduce it), and the response gossips this instance's
// own membership view back.
func (s *Service) handlePeerPing(_ context.Context, payload []byte) ([]byte, error) {
	cl := s.cl.Load()
	if cl == nil {
		return nil, errors.New("soma: not clustered")
	}
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	addr, _ := req.StringVal("addr")
	id, _ := req.StringVal("id")
	if addr != "" {
		added := cl.tracker.Add(cluster.Member{ID: id, Addr: addr})
		revived := cl.tracker.ReportSuccess(addr, nil)
		if added || revived {
			cl.updateGauges()
			telRingChanges.Inc()
			cl.kickRebalance()
		}
	}
	return cl.ringFrame(), nil
}

// handleRing serves the membership view to routing clients and the gateway.
// An unclustered service answers {epoch: 0} — callers fall back to treating
// it as a cluster of one.
func (s *Service) handleRing(_ context.Context, _ []byte) ([]byte, error) {
	cl := s.cl.Load()
	if cl == nil {
		resp := conduit.NewNode()
		resp.SetInt("epoch", 0)
		return resp.EncodeBinary(), nil
	}
	return cl.ringFrame(), nil
}

// ---------------------------------------------------------------------------
// Write placement: ownership check + one-hop forward.

// firstLeafPath returns the publish tree's first leaf path — the shard
// routing key. Multi-leaf publishes route as a unit by their first leaf.
func firstLeafPath(n *conduit.Node) string {
	var path string
	n.Walk(func(p string, _ *conduit.Node) bool {
		path = p
		return false
	})
	return path
}

// forwardPublish routes one publish to its owning peer. done=true means the
// owner accepted (or definitively rejected) it and err is the final answer;
// done=false means the caller should ingest locally — either this instance
// owns the key, or the owner is unreachable and local ingest is the
// no-loss fallback (scattered reads will still find the data).
func (cl *svcCluster) forwardPublish(ctx context.Context, ns Namespace, n *conduit.Node) (done bool, err error) {
	ring := cl.tracker.Ring()
	if ring.Len() < 2 {
		return false, nil
	}
	leaf := firstLeafPath(n)
	if leaf == "" {
		return false, nil
	}
	owner, ok := ring.Owner(cluster.ShardKey(string(ns), leaf))
	if !ok || owner.Addr == cl.self.Addr {
		return false, nil
	}
	ep, err := cl.endpoint(owner.Addr)
	if err != nil {
		telForwardFallback.Inc()
		return false, nil
	}
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.Attach("data", n)
	buf := conduit.GetEncodeBuffer()
	*buf = req.AppendBinary(*buf)
	_, err = ep.Call(ctx, RPCPublishLocal, *buf)
	conduit.PutEncodeBuffer(buf)
	if err == nil {
		telForwards.Inc()
		return true, nil
	}
	if errors.Is(err, mercury.ErrRemoteFailed) {
		// The owner answered and rejected (bad namespace, stopped): that is
		// the publish's real outcome, not a transport fault to paper over.
		return true, err
	}
	telForwardFallback.Inc()
	return false, nil
}

// handlePublishLocal ingests a forwarded publish on the owning instance —
// same envelope as soma.publish, but never re-forwards, so two instances
// with diverged rings cannot bounce a publish between them.
func (s *Service) handlePublishLocal(ctx context.Context, payload []byte) ([]byte, error) {
	ctx, sp := telemetry.ChildSpan(ctx, "soma.publish.local.handler")
	defer sp.End()
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	data, ok := req.Get("data")
	if !ok {
		return nil, fmt.Errorf("soma: publish missing data")
	}
	if err := s.publishLocalCtx(ctx, ns, data, len(payload)); err != nil {
		return nil, err
	}
	return okFrame, nil
}

// ---------------------------------------------------------------------------
// Rebalance: epoch-stamped handoff of mis-placed leaves.

func (cl *svcCluster) rebalanceLoop() {
	defer cl.wg.Done()
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	var doneEpoch uint64 // ring epoch whose handoff completed fully
	for {
		select {
		case <-cl.stop:
			return
		case <-cl.kick:
		case <-tick.C:
		}
		ring := cl.tracker.Ring()
		if ring.Len() < 2 || ring.Epoch() == doneEpoch {
			continue
		}
		if cl.rebalanceOnce(ring) {
			doneEpoch = ring.Epoch()
		}
		// Partial failure (peer severed mid-rebalance): doneEpoch stays
		// behind and the next tick retries the remaining handoffs — data is
		// never at risk meanwhile, reads scatter.
	}
}

// rebalanceOnce scans every namespace's snapshot for leaves this instance
// holds but no longer owns under ring, and hands each owner its leaves in
// one epoch-stamped frame per (namespace, owner). Returns true when every
// handoff succeeded (or there was nothing to move).
func (cl *svcCluster) rebalanceOnce(ring *cluster.Ring) bool {
	ok := true
	for _, ns := range Namespaces {
		in, err := cl.svc.instanceFor(ns)
		if err != nil {
			continue
		}
		perOwner := map[string]*conduit.Node{}
		counts := map[string]int{}
		tree := in.snapshotTree()
		tree.Walk(func(path string, leaf *conduit.Node) bool {
			owner, has := ring.Owner(cluster.ShardKey(string(ns), path))
			if !has || owner.Addr == cl.self.Addr {
				return true
			}
			dst := perOwner[owner.Addr]
			if dst == nil {
				dst = conduit.NewNode()
				perOwner[owner.Addr] = dst
			}
			dst.Fetch(path).Merge(leaf)
			counts[owner.Addr]++
			return true
		})
		for addr, data := range perOwner {
			if err := cl.sendHandoff(ring.Epoch(), ns, addr, data); err != nil {
				ok = false
				continue
			}
			telHandoffLeaves.Add(int64(counts[addr]))
		}
	}
	return ok
}

func (cl *svcCluster) sendHandoff(epoch uint64, ns Namespace, addr string, data *conduit.Node) error {
	ep, err := cl.endpoint(addr)
	if err != nil {
		return err
	}
	req := conduit.NewNode()
	req.SetInt("epoch", int64(epoch))
	req.SetString("ns", string(ns))
	req.Attach("data", data)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = ep.Call(ctx, RPCHandoff, req.EncodeBinary())
	return err
}

// handleHandoff ingests a rebalance frame. The epoch stamp must match this
// instance's current ring exactly: a mismatch means sender and receiver
// hold diverged membership views, and accepting would apply placement
// decisions from a ring this instance never agreed to. The sender retries
// once gossip converges.
func (s *Service) handleHandoff(ctx context.Context, payload []byte) ([]byte, error) {
	cl := s.cl.Load()
	if cl == nil {
		return nil, errors.New("soma: not clustered")
	}
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	epoch, _ := req.Int("epoch")
	if uint64(epoch) != cl.tracker.Ring().Epoch() {
		telHandoffStale.Inc()
		return nil, ErrStaleRingEpoch
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	data, ok := req.Get("data")
	if !ok {
		return okFrame, nil
	}
	if err := s.publishLocalCtx(ctx, ns, data, len(payload)); err != nil {
		return nil, err
	}
	telHandoffRecv.Inc()
	return okFrame, nil
}

// ---------------------------------------------------------------------------
// Scatter-gather reads.

// handleSeriesDispatch serves soma.series: scattered across the fleet when
// this instance is clustered with live peers, local otherwise.
func (s *Service) handleSeriesDispatch(ctx context.Context, payload []byte) (mercury.Response, error) {
	if cl := s.cl.Load(); cl != nil && cl.active() {
		return cl.scatterSeries(ctx, payload)
	}
	return s.handleSeries(ctx, payload)
}

// handleAlertListDispatch serves soma.alert.list: scattered when clustered
// with live peers, local otherwise.
func (s *Service) handleAlertListDispatch(ctx context.Context, payload []byte) ([]byte, error) {
	if cl := s.cl.Load(); cl != nil && cl.active() {
		return cl.scatterAlertList(ctx)
	}
	return s.handleAlertList(ctx, payload)
}

// scatterCall fans payload out to every live peer's rpc with bounded
// parallelism, decoding each response concurrently via decode. Any peer
// failure fails the scatter — a partial answer silently missing a live
// peer's shard would defeat the "reads find everything" invariant; callers
// retry, and a truly dead peer leaves the ring within PingMisses intervals.
func (cl *svcCluster) scatterCall(ctx context.Context, rpc string, payload []byte, decode func(resp *conduit.Node) error) error {
	addrs := cl.peerAddrs()
	if len(addrs) == 0 {
		return nil
	}
	telScatterFanouts.Inc()
	start := time.Now()
	defer telScatterLatency.ObserveSince(start)
	type result struct {
		resp *conduit.Node
		err  error
	}
	results := make([]result, len(addrs))
	sem := make(chan struct{}, cl.cfg.ScatterParallel)
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ep, err := cl.endpoint(addr)
			if err != nil {
				results[i].err = fmt.Errorf("cluster: peer %s: %w", addr, err)
				return
			}
			out, err := ep.Call(ctx, rpc, payload)
			if err != nil {
				results[i].err = fmt.Errorf("cluster: peer %s: %w", addr, err)
				return
			}
			resp, err := conduit.DecodeBinary(out)
			if err != nil {
				results[i].err = fmt.Errorf("cluster: peer %s: %w", addr, err)
				return
			}
			results[i].resp = resp
		}(i, addr)
	}
	wg.Wait()
	// Merge in sorted-address order so colliding paths resolve
	// deterministically regardless of which peer answered first.
	for _, r := range results {
		if r.err != nil {
			return r.err
		}
		if err := decode(r.resp); err != nil {
			return err
		}
	}
	return nil
}

// scatterQuery merges the query subtree at (ns, path) across this instance
// and every live peer, answering in the plain soma.query envelope. The
// stamp is zeroed: a cross-shard union has no single (epoch, gen) identity,
// so delta memos never latch onto it.
func (cl *svcCluster) scatterQuery(ctx context.Context, ns Namespace, path string) ([]byte, error) {
	local, err := cl.svc.Query(ns, path)
	if err != nil {
		return nil, err
	}
	merged := conduit.NewNode()
	merged.Merge(local)
	req := conduit.NewNode()
	req.SetString("ns", string(ns))
	req.SetString("path", path)
	err = cl.scatterCall(ctx, RPCQueryLocal, req.EncodeBinary(), func(resp *conduit.Node) error {
		if data, ok := resp.Get("data"); ok {
			merged.Merge(data)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	resp := conduit.NewNode()
	resp.SetInt("epoch", 0)
	resp.SetInt("gen", 0)
	resp.Attach("data", merged)
	return resp.EncodeBinary(), nil
}

// scatterSeries merges a soma.series request across the fleet: pattern
// requests union the key lists; single-key requests merge raw points by
// time and rollup buckets by window start (min/max/sum-weighted mean).
func (cl *svcCluster) scatterSeries(ctx context.Context, payload []byte) (mercury.Response, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return mercury.Response{}, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return mercury.Response{}, err
	}
	if key, ok := req.StringVal("key"); ok {
		level := Level1s
		if lv, ok := req.StringVal("level"); ok && lv != "" {
			level = SeriesLevel(lv)
		}
		after, _ := req.Float("after")
		var parts []Series
		if se, err := cl.svc.QuerySeries(ns, key, level, after); err == nil {
			parts = append(parts, se)
		} else if !errors.Is(err, ErrNoSeries) {
			return mercury.Response{}, err
		}
		err := cl.scatterCall(ctx, RPCSeriesLocal, payload, func(resp *conduit.Node) error {
			parts = append(parts, decodeSeriesResp(resp))
			return nil
		})
		if err != nil {
			if isPeerNoSeries(err) {
				// A peer that never saw this key answers ErrNoSeries; that is
				// "no data here", not a failure. Retry the fan-out collecting
				// only willing answers would race liveness — instead treat the
				// whole scatter as best-effort for this shape.
				err = nil
			} else {
				return mercury.Response{}, err
			}
		}
		if len(parts) == 0 {
			return mercury.Response{}, fmt.Errorf("%w: %s/%s", ErrNoSeries, ns, key)
		}
		return ownedFrame(encodeSeriesResp(mergeSeries(key, level, parts)))
	}
	pattern, _ := req.StringVal("pattern")
	keySet := map[string]struct{}{}
	if keys, err := cl.svc.SeriesKeys(ns, pattern); err == nil {
		for _, k := range keys {
			keySet[k] = struct{}{}
		}
	}
	err = cl.scatterCall(ctx, RPCSeriesLocal, payload, func(resp *conduit.Node) error {
		if matches, ok := resp.Get("matches"); ok {
			for _, name := range matches.ChildNames() {
				if k, ok := matches.StringVal(name); ok {
					keySet[k] = struct{}{}
				}
			}
		}
		return nil
	})
	if err != nil {
		return mercury.Response{}, err
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	resp := conduit.NewNode()
	var keyBuf [32]byte
	for i, k := range keys {
		resp.SetString(string(appendMatchKey(keyBuf[:0], i)), k)
	}
	return ownedFrame(resp)
}

// isPeerNoSeries reports whether a scattered series failure is a peer
// answering "no such series" (which travels as a remote-failure string).
func isPeerNoSeries(err error) bool {
	return err != nil && errors.Is(err, mercury.ErrRemoteFailed) &&
		strings.Contains(err.Error(), "no such series")
}

// mergeSeries folds per-shard answers for one series into a single view.
func mergeSeries(key string, level SeriesLevel, parts []Series) Series {
	out := Series{Key: key, Level: level}
	if level == LevelRaw {
		for _, p := range parts {
			out.Points = append(out.Points, p.Points...)
		}
		sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].Time < out.Points[j].Time })
		return out
	}
	byStart := map[float64]*SeriesBucket{}
	for _, p := range parts {
		for _, b := range p.Bucket {
			agg := byStart[b.Start]
			if agg == nil {
				cp := b
				byStart[b.Start] = &cp
				continue
			}
			if b.Min < agg.Min {
				agg.Min = b.Min
			}
			if b.Max > agg.Max {
				agg.Max = b.Max
			}
			total := float64(agg.Count) + float64(b.Count)
			agg.Mean = (agg.Mean*float64(agg.Count) + b.Mean*float64(b.Count)) / total
			agg.Count += b.Count
		}
	}
	for _, b := range byStart {
		out.Bucket = append(out.Bucket, *b)
	}
	sort.Slice(out.Bucket, func(i, j int) bool { return out.Bucket[i].Start < out.Bucket[j].Start })
	return out
}

// decodeSeriesResp decodes a soma.series single-key response frame — the
// inverse of encodeSeriesResp, shared with the client-side decode.
func decodeSeriesResp(resp *conduit.Node) Series {
	se := Series{}
	se.Key, _ = resp.StringVal("key")
	if lv, ok := resp.StringVal("level"); ok {
		se.Level = SeriesLevel(lv)
	}
	times, _ := resp.FloatArray("times")
	if se.Level == LevelRaw {
		values, _ := resp.FloatArray("values")
		for i := range times {
			if i < len(values) {
				se.Points = append(se.Points, SeriesPoint{Time: times[i], Value: values[i]})
			}
		}
		return se
	}
	mins, _ := resp.FloatArray("min")
	maxs, _ := resp.FloatArray("max")
	means, _ := resp.FloatArray("mean")
	counts, _ := resp.IntArray("count")
	for i := range times {
		if i >= len(mins) || i >= len(maxs) || i >= len(means) || i >= len(counts) {
			break
		}
		se.Bucket = append(se.Bucket, SeriesBucket{
			Start: times[i], Min: mins[i], Max: maxs[i], Mean: means[i], Count: counts[i],
		})
	}
	return se
}

// encodeSeriesResp builds the soma.series single-key response envelope.
func encodeSeriesResp(se Series) *conduit.Node {
	resp := conduit.NewNode()
	resp.SetString("key", se.Key)
	resp.SetString("level", string(se.Level))
	if se.Level == LevelRaw {
		times := make([]float64, len(se.Points))
		vals := make([]float64, len(se.Points))
		for i, p := range se.Points {
			times[i], vals[i] = p.Time, p.Value
		}
		resp.SetFloatArray("times", times)
		resp.SetFloatArray("values", vals)
		return resp
	}
	times := make([]float64, len(se.Bucket))
	mins := make([]float64, len(se.Bucket))
	maxs := make([]float64, len(se.Bucket))
	means := make([]float64, len(se.Bucket))
	counts := make([]int64, len(se.Bucket))
	for i, b := range se.Bucket {
		times[i], mins[i], maxs[i], means[i], counts[i] = b.Start, b.Min, b.Max, b.Mean, b.Count
	}
	resp.SetFloatArray("times", times)
	resp.SetFloatArray("min", mins)
	resp.SetFloatArray("max", maxs)
	resp.SetFloatArray("mean", means)
	resp.SetIntArray("count", counts)
	return resp
}

// scatterAlertList unions rules and standings across the fleet: rules
// dedupe by name, standings by (rule, ns, key) preferring a firing answer
// (any shard still judging the series as firing keeps the alert visible),
// then the most recent transition.
func (cl *svcCluster) scatterAlertList(ctx context.Context) ([]byte, error) {
	rules, states := cl.svc.Alerts()
	ruleByName := map[string]AlertRule{}
	for _, r := range rules {
		ruleByName[r.Name] = r
	}
	stateByKey := map[string]AlertState{}
	keyOf := func(st AlertState) string { return st.Rule + "\x00" + string(st.NS) + "\x00" + st.Key }
	mergeState := func(st AlertState) {
		k := keyOf(st)
		prev, ok := stateByKey[k]
		if !ok || (st.Firing && !prev.Firing) || (st.Firing == prev.Firing && st.Since > prev.Since) {
			stateByKey[k] = st
		}
	}
	for _, st := range states {
		mergeState(st)
	}
	err := cl.scatterCall(ctx, RPCAlertListLocal, okFrame, func(resp *conduit.Node) error {
		prules, pstates := decodeAlertListResp(resp)
		for _, r := range prules {
			if _, ok := ruleByName[r.Name]; !ok {
				ruleByName[r.Name] = r
			}
		}
		for _, st := range pstates {
			mergeState(st)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ruleByName))
	for n := range ruleByName {
		names = append(names, n)
	}
	sort.Strings(names)
	mergedStates := make([]AlertState, 0, len(stateByKey))
	keys := make([]string, 0, len(stateByKey))
	for k := range stateByKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		mergedStates = append(mergedStates, stateByKey[k])
	}
	resp := conduit.NewNode()
	for _, n := range names {
		r := ruleByName[n]
		base := "rules/" + r.Name
		resp.SetString(base+"/ns", string(r.NS))
		resp.SetString(base+"/pattern", r.Pattern)
		resp.SetString(base+"/op", r.Op)
		resp.SetFloat(base+"/threshold", r.Threshold)
		resp.SetFloat(base+"/window", r.WindowSec)
		resp.SetString(base+"/severity", r.Severity)
	}
	for i, st := range mergedStates {
		base := fmt.Sprintf("states/%06d", i)
		resp.SetString(base+"/rule", st.Rule)
		resp.SetString(base+"/ns", string(st.NS))
		resp.SetString(base+"/key", st.Key)
		resp.SetString(base+"/severity", st.Severity)
		if st.Firing {
			resp.SetString(base+"/state", "firing")
		} else {
			resp.SetString(base+"/state", "ok")
		}
		resp.SetFloat(base+"/value", st.Value)
		resp.SetFloat(base+"/since", st.Since)
	}
	return resp.EncodeBinary(), nil
}
