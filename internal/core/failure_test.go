package core

import (
	"fmt"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
)

// TestServiceDeathMidWorkflow injects a SOMA service crash halfway through
// a monitored workflow: the workflow itself must complete unaffected (the
// observability plane must never take the data plane down), monitors must
// count their publish failures, and the data collected before the crash
// must survive in a snapshot.
func TestServiceDeathMidWorkflow(t *testing.T) {
	eng := des.NewEngine()
	cluster := platform.NewCluster(2, platform.Summit())
	agent, err := pilot.NewAgent(pilot.AgentConfig{Runtime: eng, Nodes: cluster.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ServiceConfig{Clock: eng})
	addr, err := svc.Listen("inproc://svc-death-test")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rpm, _ := NewRPMonitor(RPMonitorConfig{
		Runtime: eng, Profiler: agent.Profiler(), Pub: client, IntervalSec: 20,
	})
	stopRP := rpm.Start()
	hwm, _ := NewHWMonitor(HWMonitorConfig{
		Runtime: eng,
		Source:  procfs.NewSampler(procfs.NewSyntheticSource(cluster.Nodes[0], eng, 1)),
		Pub:     client, IntervalSec: 20,
	})
	stopHW := hwm.Start()

	agent.Start()
	var tasks []*pilot.Task
	for i := 0; i < 4; i++ {
		task, err := agent.Submit(pilot.TaskDescription{
			Ranks: 21, Duration: func(pilot.ExecContext) float64 { return 200 },
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	// Kill the service mid-run.
	eng.At(150, func() { svc.Close() })
	agent.OnQuiescent(func() {
		stopRP()
		stopHW()
	})
	eng.Run()

	for _, task := range tasks {
		if task.State() != pilot.StateDone {
			t.Fatalf("task %s = %s; workflow must survive service death", task.UID, task.State())
		}
	}
	rpTicks, rpErrs := rpm.Ticks()
	if rpErrs == 0 || rpErrs >= rpTicks {
		t.Fatalf("rp monitor ticks=%d errs=%d; want some failures after the crash and some successes before", rpTicks, rpErrs)
	}
	hwTicks, hwErrs := hwm.Ticks()
	if hwErrs == 0 || hwErrs >= hwTicks {
		t.Fatalf("hw monitor ticks=%d errs=%d", hwTicks, hwErrs)
	}
	// Pre-crash data survives for post-mortem analysis.
	snap, err := svc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	a := Analysis{Q: snap}
	series, err := a.WorkflowSeries()
	if err != nil || len(series) == 0 {
		t.Fatalf("no pre-crash workflow data: %v, %v", series, err)
	}
}

// TestMonitorsSurviveTransientPublishErrors: a flaky publisher (fails every
// other call) must not stop the monitoring cadence.
func TestMonitorsSurviveTransientPublishErrors(t *testing.T) {
	eng := des.NewEngine()
	prof := pilot.NewProfiler()
	calls := 0
	flaky := publisherFunc(func(ns Namespace, n *conduit.Node) error {
		calls++
		if calls%2 == 0 {
			return fmt.Errorf("transient network error")
		}
		return nil
	})
	rpm, _ := NewRPMonitor(RPMonitorConfig{
		Runtime: eng, Profiler: prof, Pub: flaky, IntervalSec: 10,
	})
	stop := rpm.Start()
	eng.RunUntil(100)
	stop()
	ticks, errs := rpm.Ticks()
	if ticks < 10 {
		t.Fatalf("monitor stopped ticking: %d", ticks)
	}
	if errs == 0 || errs == ticks {
		t.Fatalf("ticks=%d errs=%d, want a mix", ticks, errs)
	}
}

type publisherFunc func(Namespace, *conduit.Node) error

func (f publisherFunc) Publish(ns Namespace, n *conduit.Node) error { return f(ns, n) }

// TestEndToEndFourNamespaces drives all four namespaces through one live
// service over RPC in a single simulated workflow and checks each analysis
// surface — the integration test for the whole data model.
func TestEndToEndFourNamespaces(t *testing.T) {
	eng := des.NewEngine()
	cluster := platform.NewCluster(2, platform.Summit())
	agent, err := pilot.NewAgent(pilot.AgentConfig{Runtime: eng, Nodes: cluster.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(ServiceConfig{Clock: eng})
	addr, _ := svc.Listen("inproc://four-ns-test")
	defer svc.Close()
	client, err := Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	rpm, _ := NewRPMonitor(RPMonitorConfig{
		Runtime: eng, Profiler: agent.Profiler(), Pub: client, IntervalSec: 15,
	})
	stopRP := rpm.Start()
	hwm, _ := NewHWMonitor(HWMonitorConfig{
		Runtime: eng,
		Source:  procfs.NewSampler(procfs.NewSyntheticSource(cluster.Nodes[0], eng, 2)),
		Pub:     client, IntervalSec: 15,
	})
	stopHW := hwm.Start()

	agent.Start()
	task, err := agent.Submit(pilot.TaskDescription{
		Ranks:    4,
		Duration: func(pilot.ExecContext) float64 { return 90 },
		Func: func(ctx pilot.ExecContext) error {
			// The task instruments itself: TAU-style profile into the
			// performance namespace, figure of merit into application.
			perf := conduit.NewNode()
			perf.SetFloat(fmt.Sprintf("TAU/%s/cn0000/rank_00000/MPI_Recv", ctx.Task.UID), 30)
			perf.SetFloat(fmt.Sprintf("TAU/%s/cn0000/rank_00000/.TAU application", ctx.Task.UID), 60)
			if err := client.Publish(NSPerformance, perf); err != nil {
				return err
			}
			rep, err := NewAppReporter(client, eng, ctx.Task.UID)
			if err != nil {
				return err
			}
			return rep.Report("timesteps", 1000)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	agent.OnQuiescent(func() {
		agent.StopServices()
		stopRP()
		stopHW()
	})
	eng.Run()

	if task.State() != pilot.StateDone {
		t.Fatalf("task state %s: %v", task.State(), task.Err())
	}
	a := Analysis{Q: client}
	if et, err := a.ExecTime(task.UID); err != nil || et < 89 || et > 92 {
		t.Fatalf("workflow ns exec time = %v, %v", et, err)
	}
	if hosts, err := a.Hosts(); err != nil || len(hosts) != 1 {
		t.Fatalf("hardware ns hosts = %v, %v", hosts, err)
	}
	profs, err := a.TAUProfiles()
	if err != nil || len(profs) != 1 || profs[0].TaskUID != task.UID {
		t.Fatalf("performance ns profiles = %v, %v", profs, err)
	}
	fseries, err := a.FOMSeries(task.UID, "timesteps")
	if err != nil || len(fseries) != 1 {
		t.Fatalf("application ns series = %v, %v", fseries, err)
	}
	// Every instance saw traffic.
	stats, _ := client.Stats()
	for _, ns := range Namespaces {
		if stats[ns].Publishes == 0 {
			t.Fatalf("namespace %s saw no publishes", ns)
		}
	}
}
