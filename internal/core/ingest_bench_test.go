package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Ingest benchmarks: the service-side publish hot path the Scaling A/B
// experiments stress. BenchmarkPublishIngest is the headline number the
// sharded/batched pipeline is measured by (scripts/benchdiff.sh compares it
// against scripts/bench_baseline.json): 8 concurrent publishers pushing
// timestamped hardware-style trees into one namespace, with one merged-tree
// query per publisher every 32 publishes (the paper's monitor-plus-analysis
// mix).

// benchWindow bounds the per-host timestamp fan-out, modeling the paper's
// phase-reset deployments where ResetNamespace keeps the merged tree from
// growing without bound; past the window, publishes overwrite old samples
// so the benchmark measures steady-state ingest, not tree growth.
const benchWindow = 512

// benchTree builds an 8-leaf publish payload under a windowed timestamp
// path, the shape a hardware monitor publishes every interval. The sample
// node is fetched once and the metrics set relative to it, the way the
// collectors build their trees.
func benchTree(host string, seq int64) *conduit.Node {
	n := conduit.NewNode()
	sample := n.Fetch("PROC/" + host + "/" + strconv.FormatInt(seq%benchWindow, 10) + ".0")
	sample.SetFloat("CPU Util", float64(seq%100))
	sample.SetInt("Uptime", seq)
	sample.SetInt("MemFree", 1<<30)
	sample.SetInt("MemTotal", 1<<31)
	sample.SetFloat("Load1", 0.5)
	sample.SetFloat("Load5", 0.4)
	sample.SetInt("Procs", 100)
	sample.SetString("State", "ok")
	return n
}

func BenchmarkPublishIngest(b *testing.B) {
	const publishers = 8
	svc := NewService(ServiceConfig{RanksPerNamespace: publishers})
	defer svc.Close()
	lp := LocalPublisher{Service: svc}

	var seq atomic.Int64
	var worker atomic.Int64
	b.ReportAllocs()
	b.SetParallelism((publishers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		host := fmt.Sprintf("cn%04d", worker.Add(1))
		i := 0
		for pb.Next() {
			if err := lp.Publish(NSHardware, benchTree(host, seq.Add(1))); err != nil {
				b.Fatal(err)
			}
			i++
			if i%32 == 0 {
				if _, err := svc.Query(NSHardware, "PROC/"+host); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPublishIngestTraced is BenchmarkPublishIngest with every publish
// wrapped in a root span, so the stripe append records a child span into the
// telemetry ring. make telemetry-overhead (scripts/benchdiff.sh --telemetry)
// compares it against the untraced benchmark and fails when tracing costs
// more than 5% — the self-measured analog of the paper's overhead tables.
func BenchmarkPublishIngestTraced(b *testing.B) {
	const publishers = 8
	svc := NewService(ServiceConfig{RanksPerNamespace: publishers})
	defer svc.Close()

	var seq atomic.Int64
	var worker atomic.Int64
	b.ReportAllocs()
	b.SetParallelism((publishers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		host := fmt.Sprintf("cn%04d", worker.Add(1))
		i := 0
		for pb.Next() {
			ctx, sp := telemetry.StartSpan(context.Background(), "bench.publish")
			err := svc.PublishCtx(ctx, NSHardware, benchTree(host, seq.Add(1)), 0)
			sp.End()
			if err != nil {
				b.Fatal(err)
			}
			i++
			if i%32 == 0 {
				if _, err := svc.Query(NSHardware, "PROC/"+host); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkPublishIngestRPC measures the same mix through the full client
// stub + inproc RPC framing (encode, frame, decode), so codec and transport
// pooling show up here.
func BenchmarkPublishIngestRPC(b *testing.B) {
	const publishers = 8
	svc := NewService(ServiceConfig{RanksPerNamespace: publishers})
	addr, err := svc.Listen("inproc://bench-ingest-rpc")
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()

	clients := make([]*Client, publishers)
	for i := range clients {
		c, err := Connect(addr, nil)
		if err != nil {
			b.Fatal(err)
		}
		clients[i] = c
		defer c.Close()
	}

	var seq atomic.Int64
	var worker atomic.Int64
	b.ReportAllocs()
	b.SetParallelism((publishers + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(worker.Add(1)-1) % publishers
		c := clients[w]
		host := fmt.Sprintf("cn%04d", w)
		i := 0
		for pb.Next() {
			if err := c.Publish(NSHardware, benchTree(host, seq.Add(1))); err != nil {
				b.Fatal(err)
			}
			i++
			if i%32 == 0 {
				if _, err := c.Query(NSHardware, "PROC/"+host); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSelectSnapshot measures repeated pattern selects against a static
// merged tree — the copy-on-read snapshot should make these allocation-light
// after the first rebuild.
func BenchmarkSelectSnapshot(b *testing.B) {
	svc := NewService(ServiceConfig{})
	defer svc.Close()
	lp := LocalPublisher{Service: svc}
	var wg sync.WaitGroup
	for h := 0; h < 16; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for s := 0; s < 16; s++ {
				if err := lp.Publish(NSHardware, benchTree(fmt.Sprintf("cn%04d", h), int64(s))); err != nil {
					b.Error(err)
				}
			}
		}(h)
	}
	wg.Wait()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths, _, err := svc.Select(NSHardware, "PROC/*/*/CPU Util")
		if err != nil {
			b.Fatal(err)
		}
		if len(paths) != 256 {
			b.Fatalf("matches = %d", len(paths))
		}
	}
}

// BenchmarkPublishBatch measures the coalesced publish path end to end: a
// client with EnableBatch pushing single-leaf trees through the inproc RPC
// into the service's batch ingest. One op is one logical publish, so
// 1e9/ns_per_op is the sustained publishes/sec a single connection carries —
// the number scripts/benchdiff.sh gates against min_batch_publishes_per_sec.
func BenchmarkPublishBatch(b *testing.B) {
	// High-rate ingest configuration: a short history ring keeps the live
	// heap (retained decoded trees) small so GC scan cost doesn't grow with
	// the run, and rollups are off — the load harness's default shape.
	svc := NewService(ServiceConfig{MaxRecords: 4096, DisableRollups: true})
	addr, err := svc.Listen("inproc://bench-publish-batch")
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	c, err := Connect(addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	c.EnableBatch(BatchConfig{})

	// A window of pre-built single-leaf payloads (the per-interval sample a
	// fleet of small publishers would send), reused so the benchmark times
	// the publish pipeline, not payload construction.
	nodes := make([]*conduit.Node, benchWindow)
	for i := range nodes {
		n := conduit.NewNode()
		n.SetFloat(fmt.Sprintf("LOAD/cn%04d/load", i), float64(i))
		nodes[i] = n
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Publish(NSHardware, nodes[i%benchWindow]); err != nil {
			b.Fatal(err)
		}
		// Fold pending records periodically, as a live deployment's monitor
		// queries would: steady-state throughput includes merge cost and
		// keeps the pending list (and so GC scan work) bounded.
		if i%4096 == 4095 {
			if _, err := svc.Query(NSHardware, "LOAD/cn0000"); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := c.Flush(); err != nil {
		b.Fatal(err)
	}
	if got := c.Published(); got != int64(b.N) {
		b.Fatalf("Published() = %d, want %d", got, b.N)
	}
}
