package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Threshold alert evaluator: declarative rules (metric pattern, predicate,
// window, severity) judged against the rollup windows at publish time. A
// rule transitions to firing when the windowed mean of a matching series
// crosses its threshold, and back to resolved when it recedes; both
// transitions are published on the reserved soma.alerts stream so watchers
// see them without polling. Between transitions the evaluator is silent —
// the current standing is queryable via soma.alert.list.
//
// Cost discipline: with no rules installed the publish path pays one atomic
// load and skips everything else; with rules, only the series keys touched
// by the publish at hand are (re-)evaluated.

var (
	telAlertsFiring      = telemetry.Default().Gauge("core.alerts.firing")
	telAlertsTransitions = telemetry.Default().Counter("core.alerts.transitions")
)

// DefaultAlertSeverity is used when a rule does not name one.
const DefaultAlertSeverity = "warning"

// AlertRule is one declarative threshold rule. A rule watches every series
// of NS whose key matches Pattern and fires when the mean over the trailing
// WindowSec seconds satisfies "value Op Threshold".
type AlertRule struct {
	Name      string // unique rule name
	NS        Namespace
	Pattern   string // series-key glob: '*' one segment, '**' any tail
	Op        string // one of > < >= <=
	Threshold float64
	WindowSec float64 // trailing window width; min 1 (one rollup bucket)
	Severity  string  // free-form label carried on transitions (default "warning")
}

func (r *AlertRule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("soma: alert rule missing name")
	}
	if !r.NS.Valid() {
		return &ErrUnknownNamespace{NS: r.NS}
	}
	if r.Pattern == "" {
		return fmt.Errorf("soma: alert rule %q missing pattern", r.Name)
	}
	switch r.Op {
	case ">", "<", ">=", "<=":
	default:
		return fmt.Errorf("soma: alert rule %q has unknown op %q", r.Name, r.Op)
	}
	if r.WindowSec < 1 {
		r.WindowSec = 1
	}
	if r.Severity == "" {
		r.Severity = DefaultAlertSeverity
	}
	return nil
}

func (r *AlertRule) eval(v float64) bool {
	switch r.Op {
	case ">":
		return v > r.Threshold
	case "<":
		return v < r.Threshold
	case ">=":
		return v >= r.Threshold
	default:
		return v <= r.Threshold
	}
}

// AlertState is the current standing of one (rule, series) pair.
type AlertState struct {
	Rule     string
	NS       Namespace
	Key      string
	Severity string
	Firing   bool
	Value    float64 // windowed mean at the last transition or evaluation
	Since    float64 // service time of the last transition
}

type alertState struct {
	firing bool
	value  float64
	since  float64
}

// alertEngine holds the rule set and per-(rule, series) state for one
// service.
type alertEngine struct {
	// nrules mirrors len(rules) so the publish hot path can skip evaluation
	// without taking the lock.
	nrules atomic.Int64

	mu     sync.Mutex
	rules  map[string]*AlertRule
	states map[string]map[string]*alertState // rule name → series key → state

	// notify publishes a transition tree onto the update bus under the
	// reserved alerts stream; set by the owning Service.
	notify func(ns Namespace, tree *conduit.Node)
}

func newAlertEngine(notify func(Namespace, *conduit.Node)) *alertEngine {
	return &alertEngine{
		rules:  map[string]*AlertRule{},
		states: map[string]map[string]*alertState{},
		notify: notify,
	}
}

// active reports whether any rules are installed (lock-free).
func (e *alertEngine) active() bool { return e.nrules.Load() > 0 }

// set installs or replaces a rule. Replacing clears the rule's firing state
// (its predicate may have changed meaning).
func (e *alertEngine) set(r AlertRule) error {
	if err := r.validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if old, ok := e.states[r.Name]; ok {
		for range firingOf(old) {
			telAlertsFiring.Dec()
		}
	}
	e.rules[r.Name] = &r
	e.states[r.Name] = map[string]*alertState{}
	e.nrules.Store(int64(len(e.rules)))
	return nil
}

// remove deletes a rule and its state; it reports whether the rule existed.
func (e *alertEngine) remove(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[name]; !ok {
		return false
	}
	for range firingOf(e.states[name]) {
		telAlertsFiring.Dec()
	}
	delete(e.rules, name)
	delete(e.states, name)
	e.nrules.Store(int64(len(e.rules)))
	return true
}

// resetNamespace drops the per-series standings of every rule watching ns,
// keeping the rules themselves. Called on ResetNamespace: the rollup series
// backing the standings are gone, so a firing alert would otherwise stay
// firing forever (evaluate only revisits keys touched by new publishes).
func (e *alertEngine) resetNamespace(ns Namespace) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, r := range e.rules {
		if r.NS != ns {
			continue
		}
		for range firingOf(e.states[name]) {
			telAlertsFiring.Dec()
		}
		e.states[name] = map[string]*alertState{}
	}
}

func firingOf(m map[string]*alertState) []string {
	var out []string
	for k, st := range m {
		if st.firing {
			out = append(out, k)
		}
	}
	return out
}

// list returns the rule set and the per-series standings, both sorted.
func (e *alertEngine) list() ([]AlertRule, []AlertState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rules := make([]AlertRule, 0, len(e.rules))
	for _, r := range e.rules {
		rules = append(rules, *r)
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
	var states []AlertState
	for name, m := range e.states {
		r := e.rules[name]
		for key, st := range m {
			states = append(states, AlertState{
				Rule: name, NS: r.NS, Key: key, Severity: r.Severity,
				Firing: st.firing, Value: st.value, Since: st.since,
			})
		}
	}
	sort.Slice(states, func(i, j int) bool {
		if states[i].Rule != states[j].Rule {
			return states[i].Rule < states[j].Rule
		}
		return states[i].Key < states[j].Key
	})
	return rules, states
}

// evaluate re-judges every rule of ns against the series keys a publish just
// touched. now is the newest sample time of the publish; the rule window is
// [now-WindowSec, now]. Transitions are published via notify.
func (e *alertEngine) evaluate(ns Namespace, store *seriesStore, keys []string, now float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name, r := range e.rules {
		if r.NS != ns {
			continue
		}
		for _, key := range keys {
			if !matchSeriesKey(r.Pattern, key) {
				continue
			}
			agg, ok := store.window(key, now-r.WindowSec, now)
			if !ok {
				continue
			}
			firing := r.eval(agg.Mean)
			m := e.states[name]
			st, seen := m[key]
			if !seen {
				st = &alertState{since: now}
				m[key] = st
			}
			st.value = agg.Mean
			if seen && firing == st.firing {
				continue
			}
			if !seen && !firing {
				continue // first sight, healthy: record standing silently
			}
			st.firing = firing
			st.since = now
			telAlertsTransitions.Inc()
			if firing {
				telAlertsFiring.Inc()
			} else {
				telAlertsFiring.Dec()
			}
			if e.notify != nil {
				e.notify(ns, alertTransitionTree(r, key, firing, agg.Mean, now))
			}
		}
	}
}

// alertTransitionTree builds the conduit tree published on the soma.alerts
// stream for one firing/resolved transition.
func alertTransitionTree(r *AlertRule, key string, firing bool, value, now float64) *conduit.Node {
	tr := conduit.NewNode()
	tr.SetString("rule", r.Name)
	tr.SetString("key", key)
	tr.SetString("ns", string(r.NS))
	tr.SetString("severity", r.Severity)
	if firing {
		tr.SetString("state", "firing")
	} else {
		tr.SetString("state", "resolved")
	}
	tr.SetFloat("value", value)
	tr.SetFloat("threshold", r.Threshold)
	tr.SetFloat("window", r.WindowSec)
	tr.SetFloat("time", now)
	return tr
}

// ---------------------------------------------------------------------------
// Service surface.

// SetAlert installs (or replaces) a threshold alert rule.
func (s *Service) SetAlert(r AlertRule) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	if _, err := s.instanceFor(r.NS); err != nil {
		return err
	}
	return s.alerts.set(r)
}

// RemoveAlert deletes a rule by name.
func (s *Service) RemoveAlert(name string) error {
	if s.Stopped() {
		return ErrServiceStopped
	}
	if !s.alerts.remove(name) {
		return fmt.Errorf("soma: no alert rule named %q", name)
	}
	return nil
}

// Alerts returns the installed rules and current per-series standings.
func (s *Service) Alerts() ([]AlertRule, []AlertState) {
	return s.alerts.list()
}

// ---------------------------------------------------------------------------
// RPC surface.
//
//	alert.set req : {ns, name, pattern, op, threshold, window, severity} → {}
//	alert.rm  req : {name}                                               → {}
//	alert.list    : {} → {rules/<name>/..., states/NNNNNN/...}

func (s *Service) handleAlertSet(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	ns, err := envelopeNS(req)
	if err != nil {
		return nil, err
	}
	var r AlertRule
	r.NS = ns
	r.Name, _ = req.StringVal("name")
	r.Pattern, _ = req.StringVal("pattern")
	r.Op, _ = req.StringVal("op")
	r.Threshold, _ = req.Float("threshold")
	r.WindowSec, _ = req.Float("window")
	r.Severity, _ = req.StringVal("severity")
	if err := s.SetAlert(r); err != nil {
		return nil, err
	}
	return okFrame, nil
}

func (s *Service) handleAlertRemove(_ context.Context, payload []byte) ([]byte, error) {
	req, err := conduit.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	name, _ := req.StringVal("name")
	if err := s.RemoveAlert(name); err != nil {
		return nil, err
	}
	return okFrame, nil
}

func (s *Service) handleAlertList(_ context.Context, _ []byte) ([]byte, error) {
	if s.Stopped() {
		return nil, ErrServiceStopped
	}
	rules, states := s.Alerts()
	resp := conduit.NewNode()
	for _, r := range rules {
		base := "rules/" + r.Name
		resp.SetString(base+"/ns", string(r.NS))
		resp.SetString(base+"/pattern", r.Pattern)
		resp.SetString(base+"/op", r.Op)
		resp.SetFloat(base+"/threshold", r.Threshold)
		resp.SetFloat(base+"/window", r.WindowSec)
		resp.SetString(base+"/severity", r.Severity)
	}
	for i, st := range states {
		base := fmt.Sprintf("states/%06d", i)
		resp.SetString(base+"/rule", st.Rule)
		resp.SetString(base+"/ns", string(st.NS))
		resp.SetString(base+"/key", st.Key)
		resp.SetString(base+"/severity", st.Severity)
		if st.Firing {
			resp.SetString(base+"/state", "firing")
		} else {
			resp.SetString(base+"/state", "ok")
		}
		resp.SetFloat(base+"/value", st.Value)
		resp.SetFloat(base+"/since", st.Since)
	}
	return resp.EncodeBinary(), nil
}

// ---------------------------------------------------------------------------
// Client surface.

// SetAlert installs (or replaces) a threshold alert rule on the service.
func (c *Client) SetAlert(r AlertRule) error {
	req := conduit.NewNode()
	req.SetString("ns", string(r.NS))
	req.SetString("name", r.Name)
	req.SetString("pattern", r.Pattern)
	req.SetString("op", r.Op)
	req.SetFloat("threshold", r.Threshold)
	req.SetFloat("window", r.WindowSec)
	req.SetString("severity", r.Severity)
	_, err := c.ep.Call(context.Background(), RPCAlertSet, req.EncodeBinary())
	return err
}

// RemoveAlert deletes a rule by name.
func (c *Client) RemoveAlert(name string) error {
	req := conduit.NewNode()
	req.SetString("name", name)
	_, err := c.ep.Call(context.Background(), RPCAlertRemove, req.EncodeBinary())
	return err
}

// Alerts fetches the service's installed rules and per-series standings.
func (c *Client) Alerts() ([]AlertRule, []AlertState, error) {
	out, err := c.ep.Call(context.Background(), RPCAlertList, conduit.NewNode().EncodeBinary())
	if err != nil {
		return nil, nil, err
	}
	resp, err := conduit.DecodeBinary(out)
	if err != nil {
		return nil, nil, err
	}
	rules, states := decodeAlertListResp(resp)
	return rules, states, nil
}

// decodeAlertListResp decodes a soma.alert.list response frame — shared by
// the client stub and the cluster scatter-gather merge.
func decodeAlertListResp(resp *conduit.Node) ([]AlertRule, []AlertState) {
	var rules []AlertRule
	if rn, ok := resp.Get("rules"); ok {
		for _, name := range rn.ChildNames() {
			sub := rn.Child(name)
			r := AlertRule{Name: name}
			if v, ok := sub.StringVal("ns"); ok {
				r.NS = Namespace(v)
			}
			r.Pattern, _ = sub.StringVal("pattern")
			r.Op, _ = sub.StringVal("op")
			r.Threshold, _ = sub.Float("threshold")
			r.WindowSec, _ = sub.Float("window")
			r.Severity, _ = sub.StringVal("severity")
			rules = append(rules, r)
		}
	}
	var states []AlertState
	if sn, ok := resp.Get("states"); ok {
		for _, name := range sn.ChildNames() {
			sub := sn.Child(name)
			st := AlertState{}
			st.Rule, _ = sub.StringVal("rule")
			if v, ok := sub.StringVal("ns"); ok {
				st.NS = Namespace(v)
			}
			st.Key, _ = sub.StringVal("key")
			st.Severity, _ = sub.StringVal("severity")
			if v, ok := sub.StringVal("state"); ok {
				st.Firing = v == "firing"
			}
			st.Value, _ = sub.Float("value")
			st.Since, _ = sub.Float("since")
			states = append(states, st)
		}
	}
	return rules, states
}
