package raptor

import (
	"errors"
	"testing"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
)

func fixture(t *testing.T) (*des.Engine, *Master) {
	t.Helper()
	eng := des.NewEngine()
	cluster := platform.NewCluster(1, platform.Summit())
	agent, err := pilot.NewAgent(pilot.AgentConfig{Runtime: eng, Nodes: cluster.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	agent.Start()
	return eng, NewMaster(agent)
}

func TestFunctionFanOut(t *testing.T) {
	eng, m := fixture(t)
	ran := make([]bool, 100)
	fns := make([]func() error, 100)
	for i := range fns {
		i := i
		fns[i] = func() error { ran[i] = true; return nil }
	}
	var final []Result
	m.OnDone(func(rs []Result) { final = rs })
	tasks, err := m.SubmitFunctions(fns, 1.0)
	if err != nil || len(tasks) != 100 {
		t.Fatalf("submit: %v, %d tasks", err, len(tasks))
	}
	eng.Run()
	if len(final) != 100 {
		t.Fatalf("results = %d", len(final))
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("function %d never ran", i)
		}
	}
	for _, r := range final {
		if r.Err != nil {
			t.Fatalf("fn %d err %v", r.Index, r.Err)
		}
	}
}

func TestErrorsCollected(t *testing.T) {
	eng, m := fixture(t)
	boom := errors.New("fn failed")
	m.SubmitFunctions([]func() error{
		func() error { return nil },
		func() error { return boom },
	}, 0.5)
	eng.Run()
	res := m.Results()
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	failures := 0
	for _, r := range res {
		if r.Err != nil {
			failures++
			if !errors.Is(r.Err, boom) {
				t.Fatalf("wrong error: %v", r.Err)
			}
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
}

func TestBatchInFlightRejected(t *testing.T) {
	eng, m := fixture(t)
	m.SubmitFunctions([]func() error{func() error { return nil }}, 10)
	if _, err := m.SubmitFunctions([]func() error{func() error { return nil }}, 1); err == nil {
		t.Fatal("overlapping batch accepted")
	}
	eng.Run()
	// After completion a new batch is fine.
	if _, err := m.SubmitFunctions([]func() error{func() error { return nil }}, 1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
}

func TestEmptyBatchCompletesImmediately(t *testing.T) {
	_, m := fixture(t)
	fired := false
	m.OnDone(func([]Result) { fired = true })
	tasks, err := m.SubmitFunctions(nil, 1)
	if err != nil || tasks != nil {
		t.Fatalf("empty submit: %v %v", tasks, err)
	}
	if !fired {
		t.Fatal("empty batch should fire OnDone")
	}
}

func TestParallelismBoundedByCores(t *testing.T) {
	eng, m := fixture(t) // 42 cores
	fns := make([]func() error, 84)
	for i := range fns {
		fns[i] = func() error { return nil }
	}
	m.SubmitFunctions(fns, 10)
	end := eng.Run()
	// 84 single-core 10s functions on 42 cores = 2 waves ≈ bootstrap+2*(10+overheads).
	if end < 40 || end > 60 {
		t.Fatalf("makespan = %v, want two 10s waves after 20s bootstrap", end)
	}
}
