// Package raptor is a compact analog of RP's RAPTOR subsystem, which the
// paper cites as RP's vehicle for executing function tasks at very large
// scale. A Master fans a batch of Go functions out over the pilot's
// resources as pilot function-tasks and gathers their results.
package raptor

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/pilot"
)

// Result pairs a function task with its outcome.
type Result struct {
	Index int
	UID   string
	Err   error
}

// Master submits function tasks to an agent and collects results.
type Master struct {
	agent *pilot.Agent

	mu      sync.Mutex
	results []Result
	pending int
	onDone  []func([]Result)
}

// NewMaster binds a master to a pilot agent.
func NewMaster(agent *pilot.Agent) *Master {
	return &Master{agent: agent}
}

// SubmitFunctions schedules each function as a single-core pilot task with
// the given simulated duration per call (0 means instantaneous in simulated
// time). It returns the created tasks; results arrive via OnDone or, in
// real mode, after Wait.
func (m *Master) SubmitFunctions(fns []func() error, durSec float64) ([]*pilot.Task, error) {
	m.mu.Lock()
	if m.pending > 0 {
		m.mu.Unlock()
		return nil, fmt.Errorf("raptor: batch already in flight")
	}
	m.pending = len(fns)
	m.results = nil
	m.mu.Unlock()
	if len(fns) == 0 {
		m.finish()
		return nil, nil
	}

	tasks := make([]*pilot.Task, 0, len(fns))
	for i, fn := range fns {
		i, fn := i, fn
		td := pilot.TaskDescription{
			Name:  fmt.Sprintf("raptor.fn.%04d", i),
			Ranks: 1,
			Duration: func(pilot.ExecContext) float64 {
				return durSec
			},
			Func: func(pilot.ExecContext) error { return fn() },
			OnComplete: func(t *pilot.Task) {
				m.mu.Lock()
				m.results = append(m.results, Result{Index: i, UID: t.UID, Err: t.Err()})
				m.pending--
				last := m.pending == 0
				m.mu.Unlock()
				if last {
					m.finish()
				}
			},
		}
		t, err := m.agent.Submit(td)
		if err != nil {
			return tasks, err
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// OnDone registers a callback for batch completion.
func (m *Master) OnDone(fn func([]Result)) {
	m.mu.Lock()
	m.onDone = append(m.onDone, fn)
	m.mu.Unlock()
}

// Results returns the collected results so far, ordered by completion.
func (m *Master) Results() []Result {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Result(nil), m.results...)
}

func (m *Master) finish() {
	m.mu.Lock()
	fns := append([]func([]Result){}, m.onDone...)
	res := append([]Result(nil), m.results...)
	m.mu.Unlock()
	for _, fn := range fns {
		fn(res)
	}
}
