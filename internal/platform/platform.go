// Package platform models the HPC platform the paper's experiments run on.
// The default profile mirrors Summit: 44 physical cores per node of which 2
// are reserved for the system (42 usable), 6 GPUs per node, and hardware
// multithreading off. A Cluster is a set of Nodes; a BatchSystem hands out
// Allocations (the pilot job's node set); Nodes track per-core and per-GPU
// occupancy so the scheduler, the synthetic /proc source, and the RP
// utilization timeline all agree about what is busy.
package platform

import (
	"fmt"
	"sync"
)

// NodeSpec describes one compute node's shape.
type NodeSpec struct {
	// PhysicalCores counts all cores; ReservedCores of them belong to the
	// system and are never allocatable (Summit: 44 and 2).
	PhysicalCores int
	ReservedCores int
	// GPUs per node (Summit: 6).
	GPUs int
	// MemMB is the usable RAM in MiB.
	MemMB int
}

// UsableCores returns the cores a pilot may allocate.
func (s NodeSpec) UsableCores() int { return s.PhysicalCores - s.ReservedCores }

// Summit returns the node shape of the paper's testbed.
func Summit() NodeSpec {
	return NodeSpec{PhysicalCores: 44, ReservedCores: 2, GPUs: 6, MemMB: 512 * 1024}
}

// Node is one compute node. All occupancy methods are safe for concurrent
// use (real-time mode runs executors in goroutines).
type Node struct {
	ID   int
	Name string
	Spec NodeSpec

	mu sync.Mutex
	// cores[i] holds the owner tag of usable core i ("" = free).
	cores []string
	// gpus[i] holds the owner tag of GPU i ("" = free).
	gpus []string
	// activity maps an owner tag to the busy fraction of its cores in
	// [0,1]. GPU-bound tasks set a low value so the hardware monitor sees
	// mostly idle cores even though they are allocated (paper Fig. 9).
	activity map[string]float64
	// freeCores/freeGPUs cache the free counts so scheduler feasibility
	// checks are O(1) — they dominate large-scale placement scans.
	freeCores int
	freeGPUs  int
}

// DefaultActivity is the assumed busy fraction of an allocated core whose
// owner never declared one (CPU-bound MPI ranks busy-wait near 100%).
const DefaultActivity = 0.95

// NewNode creates a node named like the paper's hostnames (cn####).
func NewNode(id int, spec NodeSpec) *Node {
	return &Node{
		ID:        id,
		Name:      fmt.Sprintf("cn%04d", id),
		Spec:      spec,
		cores:     make([]string, spec.UsableCores()),
		gpus:      make([]string, spec.GPUs),
		freeCores: spec.UsableCores(),
		freeGPUs:  spec.GPUs,
	}
}

// FreeCores returns the number of unallocated usable cores.
func (n *Node) FreeCores() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeCores
}

// FreeGPUs returns the number of unallocated GPUs.
func (n *Node) FreeGPUs() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeGPUs
}

// BusyCores returns the number of allocated usable cores.
func (n *Node) BusyCores() int { return n.Spec.UsableCores() - n.FreeCores() }

// Fits reports whether the node currently has at least cores free cores and
// gpus free GPUs, under a single lock acquisition (scheduler hot path).
func (n *Node) Fits(cores, gpus int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.freeCores >= cores && n.freeGPUs >= gpus
}

// AllocCores claims count cores for owner, returning their indices. ok is
// false (and nothing is claimed) when fewer than count are free.
func (n *Node) AllocCores(owner string, count int) (ids []int, ok bool) {
	if count <= 0 {
		return nil, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, o := range n.cores {
		if o == "" {
			ids = append(ids, i)
			if len(ids) == count {
				break
			}
		}
	}
	if len(ids) < count {
		return nil, false
	}
	for _, i := range ids {
		n.cores[i] = owner
	}
	n.freeCores -= count
	return ids, true
}

// AllocGPUs claims count GPUs for owner.
func (n *Node) AllocGPUs(owner string, count int) (ids []int, ok bool) {
	if count <= 0 {
		return nil, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, o := range n.gpus {
		if o == "" {
			ids = append(ids, i)
			if len(ids) == count {
				break
			}
		}
	}
	if len(ids) < count {
		return nil, false
	}
	for _, i := range ids {
		n.gpus[i] = owner
	}
	n.freeGPUs -= count
	return ids, true
}

// Release frees every core and GPU owned by owner and reports how many
// cores were released.
func (n *Node) Release(owner string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	freed := 0
	for i, o := range n.cores {
		if o == owner {
			n.cores[i] = ""
			freed++
		}
	}
	n.freeCores += freed
	for i, o := range n.gpus {
		if o == owner {
			n.gpus[i] = ""
			n.freeGPUs++
		}
	}
	delete(n.activity, owner)
	return freed
}

// SetActivity declares how busy owner keeps its allocated cores, in [0,1].
func (n *Node) SetActivity(owner string, frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.activity == nil {
		n.activity = map[string]float64{}
	}
	n.activity[owner] = frac
}

// ActivityOf returns owner's declared core activity, defaulting to
// DefaultActivity.
func (n *Node) ActivityOf(owner string) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if f, ok := n.activity[owner]; ok {
		return f
	}
	return DefaultActivity
}

// Owners returns the distinct owner tags currently holding cores or GPUs.
func (n *Node) Owners() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, o := range n.cores {
		if o != "" && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	for _, o := range n.gpus {
		if o != "" && !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// CoreOwners returns a copy of the per-core owner tags.
func (n *Node) CoreOwners() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.cores...)
}

// Utilization returns the busy fraction of usable cores in [0,1].
func (n *Node) Utilization() float64 {
	total := n.Spec.UsableCores()
	if total == 0 {
		return 0
	}
	return float64(n.BusyCores()) / float64(total)
}

// Cluster is a set of nodes sharing one spec.
type Cluster struct {
	Spec  NodeSpec
	Nodes []*Node
}

// NewCluster builds n nodes with the given spec.
func NewCluster(n int, spec NodeSpec) *Cluster {
	c := &Cluster{Spec: spec}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, NewNode(i, spec))
	}
	return c
}

// Node returns the node with the given id, or nil.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.Nodes) {
		return nil
	}
	return c.Nodes[id]
}

// ByName returns the node with the given hostname, or nil.
func (c *Cluster) ByName(name string) *Node {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// TotalCores returns usable cores across the cluster.
func (c *Cluster) TotalCores() int { return len(c.Nodes) * c.Spec.UsableCores() }

// TotalGPUs returns GPUs across the cluster.
func (c *Cluster) TotalGPUs() int { return len(c.Nodes) * c.Spec.GPUs }

// Allocation is the node set granted to one batch job (the pilot job).
type Allocation struct {
	JobID int
	Nodes []*Node
}

// TotalCores returns usable cores across the allocation.
func (a *Allocation) TotalCores() int {
	t := 0
	for _, n := range a.Nodes {
		t += n.Spec.UsableCores()
	}
	return t
}

// TotalGPUs returns GPUs across the allocation.
func (a *Allocation) TotalGPUs() int {
	t := 0
	for _, n := range a.Nodes {
		t += n.Spec.GPUs
	}
	return t
}

// BatchSystem grants whole-node allocations out of a cluster, standing in
// for Summit's LSF. Jobs here are granted immediately when nodes are free —
// queue wait time is outside the paper's measurements (its timings start at
// pilot bootstrap).
type BatchSystem struct {
	mu        sync.Mutex
	cluster   *Cluster
	allocated map[int]bool // node id -> taken
	nextJob   int
}

// NewBatchSystem wraps a cluster.
func NewBatchSystem(c *Cluster) *BatchSystem {
	return &BatchSystem{cluster: c, allocated: map[int]bool{}}
}

// Submit requests nodeCount whole nodes. It returns an error when the
// cluster cannot satisfy the request.
func (b *BatchSystem) Submit(nodeCount int) (*Allocation, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if nodeCount <= 0 {
		return nil, fmt.Errorf("platform: invalid node count %d", nodeCount)
	}
	var nodes []*Node
	for _, n := range b.cluster.Nodes {
		if !b.allocated[n.ID] {
			nodes = append(nodes, n)
			if len(nodes) == nodeCount {
				break
			}
		}
	}
	if len(nodes) < nodeCount {
		return nil, fmt.Errorf("platform: %d nodes requested, %d free", nodeCount, len(nodes))
	}
	for _, n := range nodes {
		b.allocated[n.ID] = true
	}
	b.nextJob++
	return &Allocation{JobID: b.nextJob, Nodes: nodes}, nil
}

// Cancel returns an allocation's nodes to the pool and releases any
// leftover core/GPU claims.
func (b *BatchSystem) Cancel(a *Allocation) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, n := range a.Nodes {
		delete(b.allocated, n.ID)
		for _, owner := range n.Owners() {
			n.Release(owner)
		}
	}
}

// FreeNodes reports how many nodes are currently unallocated.
func (b *BatchSystem) FreeNodes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.cluster.Nodes) - len(b.allocated)
}
