package platform

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestSummitSpec(t *testing.T) {
	s := Summit()
	if s.PhysicalCores != 44 || s.ReservedCores != 2 {
		t.Fatalf("spec = %+v", s)
	}
	if s.UsableCores() != 42 {
		t.Fatalf("usable = %d want 42", s.UsableCores())
	}
	if s.GPUs != 6 {
		t.Fatalf("gpus = %d want 6", s.GPUs)
	}
}

func TestNodeNaming(t *testing.T) {
	n := NewNode(4302, Summit())
	if n.Name != "cn4302" {
		t.Fatalf("name = %q", n.Name)
	}
}

func TestAllocReleaseCores(t *testing.T) {
	n := NewNode(0, Summit())
	ids, ok := n.AllocCores("task.000000", 20)
	if !ok || len(ids) != 20 {
		t.Fatalf("alloc = %v, %v", ids, ok)
	}
	if n.FreeCores() != 22 || n.BusyCores() != 20 {
		t.Fatalf("free=%d busy=%d", n.FreeCores(), n.BusyCores())
	}
	// Over-allocation must fail atomically.
	if _, ok := n.AllocCores("task.000001", 23); ok {
		t.Fatal("over-allocation succeeded")
	}
	if n.FreeCores() != 22 {
		t.Fatal("failed allocation leaked cores")
	}
	if freed := n.Release("task.000000"); freed != 20 {
		t.Fatalf("released %d", freed)
	}
	if n.FreeCores() != 42 {
		t.Fatal("release incomplete")
	}
	if n.Release("ghost") != 0 {
		t.Fatal("releasing unknown owner freed cores")
	}
}

func TestAllocGPUs(t *testing.T) {
	n := NewNode(0, Summit())
	if _, ok := n.AllocGPUs("t1", 6); !ok {
		t.Fatal("full GPU alloc failed")
	}
	if n.FreeGPUs() != 0 {
		t.Fatalf("free gpus = %d", n.FreeGPUs())
	}
	if _, ok := n.AllocGPUs("t2", 1); ok {
		t.Fatal("oversubscribed GPU alloc succeeded")
	}
	n.Release("t1")
	if n.FreeGPUs() != 6 {
		t.Fatal("gpu release incomplete")
	}
}

func TestZeroCountAllocSucceeds(t *testing.T) {
	n := NewNode(0, Summit())
	if ids, ok := n.AllocCores("t", 0); !ok || ids != nil {
		t.Fatalf("zero alloc = %v, %v", ids, ok)
	}
	if _, ok := n.AllocGPUs("t", 0); !ok {
		t.Fatal("zero gpu alloc failed")
	}
}

func TestOwnersAndCoreOwners(t *testing.T) {
	n := NewNode(0, Summit())
	n.AllocCores("a", 2)
	n.AllocCores("b", 1)
	n.AllocGPUs("c", 1)
	owners := n.Owners()
	sort.Strings(owners)
	if !reflect.DeepEqual(owners, []string{"a", "b", "c"}) {
		t.Fatalf("owners = %v", owners)
	}
	co := n.CoreOwners()
	if co[0] != "a" || co[1] != "a" || co[2] != "b" {
		t.Fatalf("core owners = %v", co[:4])
	}
}

func TestUtilization(t *testing.T) {
	n := NewNode(0, Summit())
	if n.Utilization() != 0 {
		t.Fatal("fresh node utilization should be 0")
	}
	n.AllocCores("t", 21)
	if u := n.Utilization(); u != 0.5 {
		t.Fatalf("util = %v want 0.5", u)
	}
}

func TestActivity(t *testing.T) {
	n := NewNode(0, Summit())
	if n.ActivityOf("unknown") != DefaultActivity {
		t.Fatal("default activity wrong")
	}
	n.SetActivity("sim", 0.2)
	if n.ActivityOf("sim") != 0.2 {
		t.Fatal("SetActivity lost")
	}
	n.SetActivity("x", 1.5)
	if n.ActivityOf("x") != 1 {
		t.Fatal("activity not clamped high")
	}
	n.SetActivity("y", -1)
	if n.ActivityOf("y") != 0 {
		t.Fatal("activity not clamped low")
	}
	n.AllocCores("sim", 1)
	n.Release("sim")
	if n.ActivityOf("sim") != DefaultActivity {
		t.Fatal("release should clear activity")
	}
}

func TestClusterTotals(t *testing.T) {
	c := NewCluster(10, Summit())
	if c.TotalCores() != 420 || c.TotalGPUs() != 60 {
		t.Fatalf("totals = %d cores %d gpus", c.TotalCores(), c.TotalGPUs())
	}
	if c.Node(3).Name != "cn0003" {
		t.Fatal("Node(3) wrong")
	}
	if c.Node(-1) != nil || c.Node(10) != nil {
		t.Fatal("out-of-range Node should be nil")
	}
	if c.ByName("cn0007") == nil || c.ByName("nope") != nil {
		t.Fatal("ByName lookup wrong")
	}
}

func TestBatchSubmitCancel(t *testing.T) {
	c := NewCluster(11, Summit())
	b := NewBatchSystem(c)
	// Paper's overload run: 10 application nodes + 1 RP/SOMA node.
	alloc, err := b.Submit(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc.Nodes) != 11 || alloc.TotalCores() != 462 || alloc.TotalGPUs() != 66 {
		t.Fatalf("alloc = %d nodes %d cores", len(alloc.Nodes), alloc.TotalCores())
	}
	if b.FreeNodes() != 0 {
		t.Fatalf("free = %d", b.FreeNodes())
	}
	if _, err := b.Submit(1); err == nil {
		t.Fatal("over-subscription accepted")
	}
	// Cancel releases nodes and any leftover claims.
	alloc.Nodes[0].AllocCores("leftover", 5)
	b.Cancel(alloc)
	if b.FreeNodes() != 11 {
		t.Fatalf("free after cancel = %d", b.FreeNodes())
	}
	if alloc.Nodes[0].FreeCores() != 42 {
		t.Fatal("cancel did not release leftover cores")
	}
}

func TestBatchInvalidRequest(t *testing.T) {
	b := NewBatchSystem(NewCluster(2, Summit()))
	if _, err := b.Submit(0); err == nil {
		t.Fatal("zero-node request accepted")
	}
	if _, err := b.Submit(-3); err == nil {
		t.Fatal("negative request accepted")
	}
}

func TestConcurrentAllocationNoDoubleBooking(t *testing.T) {
	n := NewNode(0, Summit())
	var wg sync.WaitGroup
	granted := make([][]int, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if ids, ok := n.AllocCores(fmt.Sprintf("t%d", i), 2); ok {
				granted[i] = ids
			}
		}(i)
	}
	wg.Wait()
	seen := map[int]int{}
	grants := 0
	for i, ids := range granted {
		if ids == nil {
			continue
		}
		grants++
		for _, id := range ids {
			if prev, dup := seen[id]; dup {
				t.Fatalf("core %d granted to both t%d and t%d", id, prev, i)
			}
			seen[id] = i
		}
	}
	if grants != 21 { // 42 cores / 2 per request
		t.Fatalf("grants = %d want 21", grants)
	}
}

// Property: for any sequence of alloc/release pairs, free+busy == usable.
func TestQuickConservation(t *testing.T) {
	f := func(ops []uint8) bool {
		n := NewNode(0, Summit())
		live := map[string]bool{}
		for i, op := range ops {
			owner := fmt.Sprintf("t%d", i%7)
			if op%2 == 0 {
				if _, ok := n.AllocCores(owner, int(op%11)); ok {
					live[owner] = true
				}
			} else {
				n.Release(owner)
				delete(live, owner)
			}
			if n.FreeCores()+n.BusyCores() != 42 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
