package conduit

import "strings"

// Select returns the leaf paths under n matching a '/'-separated pattern,
// where '*' matches exactly one path segment and '**' matches any number of
// trailing segments. Analyses use this to slice namespace trees without
// knowing host or timestamp names, e.g.:
//
//	n.Select("PROC/*/*/CPU Util")   // every host's every sample
//	n.Select("RP/task.000007/**")   // everything about one task
//
// Matches are returned in insertion order.
func (n *Node) Select(pattern string) []string {
	segs := splitPath(pattern)
	if len(segs) == 0 {
		return nil
	}
	var out []string
	n.selectWalk("", segs, &out)
	return out
}

func (n *Node) selectWalk(prefix string, pattern []string, out *[]string) {
	if len(pattern) == 0 {
		// Pattern exhausted: match only if this is a leaf.
		if n.IsLeaf() {
			*out = append(*out, prefix)
		}
		return
	}
	seg := pattern[0]
	if seg == "**" {
		// '**' matches every leaf under here (including zero segments when
		// the current node is itself a leaf).
		n.Walk(func(path string, _ *Node) bool {
			p := path
			if prefix != "" {
				if path == "" {
					p = prefix
				} else {
					p = prefix + "/" + path
				}
			}
			*out = append(*out, p)
			return true
		})
		return
	}
	if n.kind != KindObject {
		return
	}
	for _, name := range n.order {
		if seg != "*" && seg != name {
			continue
		}
		p := name
		if prefix != "" {
			p = prefix + "/" + name
		}
		n.lookup(name).selectWalk(p, pattern[1:], out)
	}
}

// SelectFloats returns the float64 values at every leaf matching pattern
// (non-numeric matches are skipped) — the common analysis shape of "all
// CPU Util values" or "all MPI_Recv times".
func (n *Node) SelectFloats(pattern string) []float64 {
	var out []float64
	for _, path := range n.Select(pattern) {
		if v, ok := n.Float(path); ok {
			out = append(out, v)
		}
	}
	return out
}

// HasPrefixPath reports whether any leaf lives under the given path prefix.
func (n *Node) HasPrefixPath(prefix string) bool {
	sub, ok := n.Get(prefix)
	if !ok {
		return false
	}
	return sub.IsLeaf() || sub.NumLeaves() > 0
}

// PathJoin joins path segments with '/', skipping empties — a convenience
// for building namespace paths without caring about separators.
func PathJoin(segs ...string) string {
	var parts []string
	for _, s := range segs {
		s = strings.Trim(s, "/")
		if s != "" {
			parts = append(parts, s)
		}
	}
	return strings.Join(parts, "/")
}
