package conduit

import (
	"reflect"
	"strings"
	"testing"
)

func TestEmptyNode(t *testing.T) {
	n := NewNode()
	if !n.IsEmpty() {
		t.Fatal("new node should be empty")
	}
	if n.IsLeaf() {
		t.Fatal("empty node is not a leaf")
	}
	if n.NumChildren() != 0 {
		t.Fatal("empty node has no children")
	}
	if n.NumLeaves() != 0 {
		t.Fatalf("empty node has %d leaves, want 0", n.NumLeaves())
	}
}

func TestSetGetScalars(t *testing.T) {
	n := NewNode()
	n.SetInt("a/b/i", 42)
	n.SetFloat("a/b/f", 3.5)
	n.SetString("a/s", "hello")
	n.SetBool("a/t", true)

	if v, ok := n.Int("a/b/i"); !ok || v != 42 {
		t.Errorf("Int = %v,%v want 42,true", v, ok)
	}
	if v, ok := n.Float("a/b/f"); !ok || v != 3.5 {
		t.Errorf("Float = %v,%v want 3.5,true", v, ok)
	}
	if v, ok := n.StringVal("a/s"); !ok || v != "hello" {
		t.Errorf("StringVal = %q,%v", v, ok)
	}
	if v, ok := n.Bool("a/t"); !ok || !v {
		t.Errorf("Bool = %v,%v", v, ok)
	}
}

func TestNumericConversions(t *testing.T) {
	n := NewNode()
	n.SetInt("i", 7)
	n.SetFloat("f", 2.9)
	if v, ok := n.Float("i"); !ok || v != 7.0 {
		t.Errorf("Float(int leaf) = %v,%v want 7,true", v, ok)
	}
	if v, ok := n.Int("f"); !ok || v != 2 {
		t.Errorf("Int(float leaf) = %v,%v want 2,true", v, ok)
	}
	if _, ok := n.Int("missing"); ok {
		t.Error("Int on missing path should fail")
	}
}

func TestArrays(t *testing.T) {
	n := NewNode()
	src := []int64{1, 2, 3}
	n.SetIntArray("cpu", src)
	src[0] = 99 // must not alias
	got, ok := n.IntArray("cpu")
	if !ok || !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Errorf("IntArray = %v,%v", got, ok)
	}
	n.SetFloatArray("util", []float64{0.5, 0.75})
	fa, ok := n.FloatArray("util")
	if !ok || len(fa) != 2 || fa[1] != 0.75 {
		t.Errorf("FloatArray = %v,%v", fa, ok)
	}
}

func TestFetchCreatesIntermediates(t *testing.T) {
	n := NewNode()
	leaf := n.Fetch("x/y/z")
	if !leaf.IsEmpty() {
		t.Fatal("fetched leaf should start empty")
	}
	if !n.Has("x/y") {
		t.Fatal("intermediate x/y should now exist")
	}
	if _, ok := n.Get("x/nope"); ok {
		t.Fatal("Get must not create")
	}
}

func TestPathNormalization(t *testing.T) {
	n := NewNode()
	n.SetInt("a//b/", 1)
	if v, ok := n.Int("a/b"); !ok || v != 1 {
		t.Errorf("path with empty segments should normalize: %v,%v", v, ok)
	}
	if got := n.Fetch(""); got != n {
		t.Error("empty path should return the node itself")
	}
}

func TestLeafOverwriteByChildren(t *testing.T) {
	n := NewNode()
	n.SetInt("a", 1)
	n.SetInt("a/b", 2) // converts the leaf into an object
	if v, ok := n.Int("a/b"); !ok || v != 2 {
		t.Fatalf("a/b = %v,%v", v, ok)
	}
	if _, ok := n.Int("a"); ok {
		t.Fatal("a should no longer be an int leaf")
	}
}

func TestRemove(t *testing.T) {
	n := NewNode()
	n.SetInt("a/b", 1)
	n.SetInt("a/c", 2)
	if !n.Remove("a/b") {
		t.Fatal("Remove existing failed")
	}
	if n.Has("a/b") {
		t.Fatal("a/b still present")
	}
	if n.Remove("a/b") {
		t.Fatal("second Remove should be false")
	}
	if n.Remove("") {
		t.Fatal("Remove of empty path should be false")
	}
	if got := n.Child("a").ChildNames(); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("order after remove = %v", got)
	}
}

func TestChildOrderPreserved(t *testing.T) {
	n := NewNode()
	names := []string{"zeta", "alpha", "mid", "beta"}
	for i, nm := range names {
		n.SetInt(nm, int64(i))
	}
	if got := n.ChildNames(); !reflect.DeepEqual(got, names) {
		t.Fatalf("ChildNames = %v want %v", got, names)
	}
	if got := n.Leaves(); !reflect.DeepEqual(got, names) {
		t.Fatalf("Leaves = %v want %v", got, names)
	}
}

func TestCloneIsDeep(t *testing.T) {
	n := NewNode()
	n.SetString("rp/task.000000/ev", "launch_start")
	n.SetFloatArray("hw/util", []float64{0.1})
	c := n.Clone()
	n.SetString("rp/task.000000/ev", "changed")
	fa, _ := n.FloatArray("hw/util")
	fa[0] = 9 // mutate original backing array
	if v, _ := c.StringVal("rp/task.000000/ev"); v != "launch_start" {
		t.Error("clone shares string leaf")
	}
	cfa, _ := c.FloatArray("hw/util")
	if cfa[0] != 0.1 {
		t.Error("clone shares float array")
	}
}

func TestMerge(t *testing.T) {
	a := NewNode()
	a.SetInt("x/keep", 1)
	a.SetInt("x/clobber", 1)
	b := NewNode()
	b.SetInt("x/clobber", 2)
	b.SetInt("y/new", 3)
	a.Merge(b)
	if v, _ := a.Int("x/keep"); v != 1 {
		t.Error("merge dropped unrelated leaf")
	}
	if v, _ := a.Int("x/clobber"); v != 2 {
		t.Error("merge did not overwrite")
	}
	if v, _ := a.Int("y/new"); v != 3 {
		t.Error("merge did not add")
	}
	a.Merge(nil) // must be a no-op
	if a.NumLeaves() != 3 {
		t.Error("merge(nil) changed node")
	}
}

func TestMergeLeafIntoNode(t *testing.T) {
	a := NewNode()
	a.SetInt("v", 1)
	leaf := NewNode()
	leaf.SetString("", "") // stays empty: SetString("") sets the node itself
	b := NewNode()
	b.Fetch("v").setLeaf(KindString)
	b.Fetch("v").s = "now-a-string"
	a.Merge(b)
	if v, ok := a.StringVal("v"); !ok || v != "now-a-string" {
		t.Errorf("leaf type overwrite failed: %q %v", v, ok)
	}
	_ = leaf
}

func TestWalkEarlyStop(t *testing.T) {
	n := NewNode()
	for i := 0; i < 5; i++ {
		n.SetInt(strings.Repeat("k", i+1), int64(i))
	}
	count := 0
	n.Walk(func(string, *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk visited %d leaves, want 3", count)
	}
}

func TestEqualAndDiff(t *testing.T) {
	a := NewNode()
	a.SetInt("x", 1)
	a.SetString("s", "v")
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone should be equal")
	}
	if d := a.Diff(b); len(d) != 0 {
		t.Fatalf("diff of equal trees = %v", d)
	}
	b.SetInt("x", 2)
	b.SetInt("extra", 3)
	a.SetInt("only_a", 4)
	d := a.Diff(b)
	want := []string{"extra", "only_a", "x"}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("diff = %v want %v", d, want)
	}
	if a.Equal(b) {
		t.Fatal("modified trees should differ")
	}
}

func TestEqualKindMismatch(t *testing.T) {
	a := NewNode()
	a.SetInt("k", 1)
	b := NewNode()
	b.SetFloat("k", 1)
	if a.Equal(b) {
		t.Fatal("int leaf should not equal float leaf")
	}
	var nilNode *Node
	if nilNode.Equal(a) || a.Equal(nilNode) {
		t.Fatal("nil comparisons should be false")
	}
	if !nilNode.Equal(nilNode) {
		t.Fatal("nil == nil")
	}
}

func TestFormatMatchesListingStyle(t *testing.T) {
	n := NewNode()
	n.SetString("RP/task.000000/1698435412.6060030", "launch_start")
	out := n.Format()
	for _, want := range []string{"RP:", "task.000000:", "launch_start"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindEmpty:      "empty",
		KindObject:     "object",
		KindInt:        "int64",
		KindFloatArray: "float64_array",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q want %q", k, k.String(), want)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestValueInterface(t *testing.T) {
	n := NewNode()
	n.SetBool("b", true)
	c, _ := n.Get("b")
	if v, ok := c.Value().(bool); !ok || !v {
		t.Errorf("Value() = %v", c.Value())
	}
	if NewNode().Value() != nil {
		t.Error("empty node Value should be nil")
	}
}
