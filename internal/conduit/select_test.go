package conduit

import (
	"reflect"
	"testing"
)

func selectFixture() *Node {
	n := NewNode()
	n.SetFloat("PROC/cn0001/10.0/CPU Util", 20)
	n.SetFloat("PROC/cn0001/20.0/CPU Util", 40)
	n.SetFloat("PROC/cn0002/10.0/CPU Util", 60)
	n.SetInt("PROC/cn0002/10.0/Num Processes", 5)
	n.SetString("RP/task.000007/1.0", "launch_start")
	n.SetString("RP/task.000007/2.0", "exec_start")
	return n
}

func TestSelectSingleStar(t *testing.T) {
	n := selectFixture()
	got := n.Select("PROC/*/10.0/CPU Util")
	want := []string{"PROC/cn0001/10.0/CPU Util", "PROC/cn0002/10.0/CPU Util"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// '*' matches exactly one segment: no match at the wrong depth.
	if got := n.Select("PROC/*/CPU Util"); got != nil {
		t.Fatalf("wrong-depth match: %v", got)
	}
}

func TestSelectDoubleStar(t *testing.T) {
	n := selectFixture()
	got := n.Select("RP/task.000007/**")
	want := []string{"RP/task.000007/1.0", "RP/task.000007/2.0"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if all := n.Select("**"); len(all) != n.NumLeaves() {
		t.Fatalf("** matched %d of %d leaves", len(all), n.NumLeaves())
	}
}

func TestSelectExactAndMisses(t *testing.T) {
	n := selectFixture()
	if got := n.Select("PROC/cn0001/20.0/CPU Util"); len(got) != 1 {
		t.Fatalf("exact = %v", got)
	}
	if got := n.Select("PROC/cn0009/**"); got != nil {
		t.Fatalf("missing host matched: %v", got)
	}
	if got := n.Select(""); got != nil {
		t.Fatalf("empty pattern matched: %v", got)
	}
	// Pattern ending on an interior node matches nothing (leaves only).
	if got := n.Select("PROC/cn0001"); got != nil {
		t.Fatalf("interior match: %v", got)
	}
}

func TestSelectFloats(t *testing.T) {
	n := selectFixture()
	got := n.SelectFloats("PROC/*/*/CPU Util")
	want := []float64{20, 40, 60}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Non-numeric leaves are skipped, numeric ints convert.
	if got := n.SelectFloats("RP/task.000007/*"); got != nil {
		t.Fatalf("string leaves gave floats: %v", got)
	}
	if got := n.SelectFloats("PROC/cn0002/10.0/*"); !reflect.DeepEqual(got, []float64{60, 5}) {
		t.Fatalf("mixed leaves = %v", got)
	}
}

func TestHasPrefixPath(t *testing.T) {
	n := selectFixture()
	if !n.HasPrefixPath("PROC/cn0001") {
		t.Fatal("existing prefix not found")
	}
	if !n.HasPrefixPath("PROC/cn0001/10.0/CPU Util") {
		t.Fatal("leaf prefix not found")
	}
	if n.HasPrefixPath("PROC/cn0009") {
		t.Fatal("missing prefix found")
	}
	// An explicitly created empty node is a placeholder leaf and counts as
	// present (it round-trips through the codecs too).
	empty := NewNode()
	empty.Fetch("a/b")
	if !empty.HasPrefixPath("a") {
		t.Fatal("empty placeholder should count as present")
	}
	if empty.HasPrefixPath("z") {
		t.Fatal("absent path found")
	}
}

func TestPathJoin(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{[]string{"PROC", "cn0001", "10.0"}, "PROC/cn0001/10.0"},
		{[]string{"/PROC/", "", "/x"}, "PROC/x"},
		{[]string{}, ""},
		{[]string{"", "/"}, ""},
	}
	for _, c := range cases {
		if got := PathJoin(c.in...); got != c.want {
			t.Errorf("PathJoin(%v) = %q want %q", c.in, got, c.want)
		}
	}
}
