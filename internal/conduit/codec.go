package conduit

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Binary wire format (little endian throughout):
//
//	node    := kind(u8) payload
//	object  := count(uvarint) { name(str) node }*
//	int     := zigzag varint
//	float   := u64 (IEEE 754 bits)
//	string  := str
//	bool    := u8
//	i-array := count(uvarint) { zigzag varint }*
//	f-array := count(uvarint) { u64 }*
//	str     := len(uvarint) bytes
//
// The format is self-describing and versioned by a 4-byte magic header so a
// SOMA service can reject frames from incompatible clients.

var binMagic = [4]byte{'C', 'D', 'T', 1}

// Common codec errors.
var (
	ErrBadMagic  = errors.New("conduit: bad magic header")
	ErrTruncated = errors.New("conduit: truncated input")
)

// maxDecodeItems bounds per-node child and array counts so a corrupt or
// hostile frame cannot force a huge allocation before the data is read.
const maxDecodeItems = 1 << 24

// EncodeBinary serializes the subtree to the compact binary wire format used
// for RPC transport between SOMA clients and service instances.
func (n *Node) EncodeBinary() []byte {
	buf := make([]byte, 0, 64+n.NumLeaves()*16)
	return n.AppendBinary(buf)
}

// AppendBinary appends the node's complete wire frame (magic header
// included) to dst and returns the extended slice. It is the allocation-free
// flavour of EncodeBinary for callers that manage their own buffers, e.g.
// via GetEncodeBuffer.
func (n *Node) AppendBinary(dst []byte) []byte {
	dst = append(dst, binMagic[:]...)
	return n.encodeBinary(dst)
}

// EncodeBinaryStable serializes the subtree like EncodeBinary but builds the
// frame in a pooled scratch buffer and returns an exact-size owned copy.
// EncodeBinary pre-sizes its allocation with an O(leaves) NumLeaves walk and
// typically over- or under-shoots; this flavour walks the tree once and the
// returned slice wastes no capacity — the shape wanted for frames that are
// retained (snapshot caches), where slack capacity would be pinned for the
// snapshot's lifetime.
func (n *Node) EncodeBinaryStable() []byte {
	bp := GetEncodeBuffer()
	*bp = n.AppendBinary(*bp)
	out := make([]byte, len(*bp))
	copy(out, *bp)
	PutEncodeBuffer(bp)
	return out
}

// encBufPool recycles encode buffers across publishes; the hot publish path
// would otherwise allocate one wire buffer per call.
var encBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 1024)
	return &b
}}

// maxPooledBuf bounds what goes back into the pool so one huge frame does
// not pin memory forever.
const maxPooledBuf = 1 << 16

// GetEncodeBuffer returns a pooled zero-length buffer for AppendBinary.
// Return it with PutEncodeBuffer once the encoded bytes are no longer
// referenced (after the RPC call completes).
func GetEncodeBuffer() *[]byte {
	bp := encBufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

// PutEncodeBuffer recycles a buffer obtained from GetEncodeBuffer. The
// caller must not use the buffer afterwards.
func PutEncodeBuffer(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		encBufPool.Put(bp)
	}
}

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:k]...)
}

func appendVarint(buf []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutVarint(tmp[:], v)
	return append(buf, tmp[:k]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(buf, tmp[:]...)
}

func (n *Node) encodeBinary(buf []byte) []byte {
	buf = append(buf, byte(n.kind))
	switch n.kind {
	case KindEmpty:
	case KindObject:
		buf = appendUvarint(buf, uint64(len(n.order)))
		for _, name := range n.order {
			buf = appendString(buf, name)
			buf = n.lookup(name).encodeBinary(buf)
		}
	case KindInt:
		buf = appendVarint(buf, n.i)
	case KindFloat:
		buf = appendFloat(buf, n.f)
	case KindString:
		buf = appendString(buf, n.s)
	case KindBool:
		if n.b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindIntArray:
		buf = appendUvarint(buf, uint64(len(n.ia)))
		for _, v := range n.ia {
			buf = appendVarint(buf, v)
		}
	case KindFloatArray:
		buf = appendUvarint(buf, uint64(len(n.fa)))
		for _, v := range n.fa {
			buf = appendFloat(buf, v)
		}
	}
	return buf
}

type binReader struct {
	data []byte
	pos  int
	// arena is a bump allocator for decoded nodes: one []Node chunk serves
	// many *Node results, cutting decode allocations by the chunk size. The
	// nodes escape into the decoded tree, so chunks are never reused — only
	// the per-node allocation is amortized.
	arena []Node
}

// arenaChunk is the node-arena chunk size; frames smaller than that are
// bounded by their encoded size (every node costs at least 2 wire bytes).
const arenaChunk = 64

func (r *binReader) newNode() *Node {
	if len(r.arena) == 0 {
		n := arenaChunk
		if rem := (len(r.data)-r.pos)/2 + 1; rem < n {
			n = rem
		}
		r.arena = make([]Node, n)
	}
	nd := &r.arena[0]
	r.arena = r.arena[1:]
	return nd
}

func (r *binReader) u8() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, ErrTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, k := binary.Uvarint(r.data[r.pos:])
	if k <= 0 {
		return 0, ErrTruncated
	}
	r.pos += k
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, k := binary.Varint(r.data[r.pos:])
	if k <= 0 {
		return 0, ErrTruncated
	}
	r.pos += k
	return v, nil
}

func (r *binReader) str() (string, error) {
	ln, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.data)-r.pos) < ln {
		return "", ErrTruncated
	}
	s := string(r.data[r.pos : r.pos+int(ln)])
	r.pos += int(ln)
	return s, nil
}

func (r *binReader) f64() (float64, error) {
	if len(r.data)-r.pos < 8 {
		return 0, ErrTruncated
	}
	bits := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return math.Float64frombits(bits), nil
}

// DecodeBinary parses a frame produced by EncodeBinary.
func DecodeBinary(data []byte) (*Node, error) {
	if len(data) < 4 || data[0] != binMagic[0] || data[1] != binMagic[1] ||
		data[2] != binMagic[2] || data[3] != binMagic[3] {
		return nil, ErrBadMagic
	}
	r := binReader{data: data, pos: 4}
	n, err := decodeNode(&r, 0)
	if err != nil {
		return nil, err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("conduit: %d trailing bytes", len(data)-r.pos)
	}
	return n, nil
}

// maxDepth bounds recursion so a malicious frame cannot blow the stack.
const maxDepth = 512

func decodeNode(r *binReader, depth int) (*Node, error) {
	if depth > maxDepth {
		return nil, errors.New("conduit: tree too deep")
	}
	kb, err := r.u8()
	if err != nil {
		return nil, err
	}
	n := r.newNode()
	n.kind = Kind(kb)
	switch n.kind {
	case KindEmpty:
	case KindObject:
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if count > maxDecodeItems {
			return nil, fmt.Errorf("conduit: child count %d too large", count)
		}
		if count > 0 {
			n.children = make(map[string]*Node, count)
			n.order = make([]string, 0, count)
		}
		for i := uint64(0); i < count; i++ {
			name, err := r.str()
			if err != nil {
				return nil, err
			}
			c, err := decodeNode(r, depth+1)
			if err != nil {
				return nil, err
			}
			if _, dup := n.children[name]; !dup {
				n.order = append(n.order, name)
			}
			n.children[name] = c
		}
	case KindInt:
		if n.i, err = r.varint(); err != nil {
			return nil, err
		}
	case KindFloat:
		if n.f, err = r.f64(); err != nil {
			return nil, err
		}
	case KindString:
		if n.s, err = r.str(); err != nil {
			return nil, err
		}
	case KindBool:
		b, err := r.u8()
		if err != nil {
			return nil, err
		}
		n.b = b != 0
	case KindIntArray:
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if count > maxDecodeItems {
			return nil, fmt.Errorf("conduit: array count %d too large", count)
		}
		n.ia = make([]int64, count)
		for i := range n.ia {
			if n.ia[i], err = r.varint(); err != nil {
				return nil, err
			}
		}
	case KindFloatArray:
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if count > maxDecodeItems {
			return nil, fmt.Errorf("conduit: array count %d too large", count)
		}
		n.fa = make([]float64, count)
		for i := range n.fa {
			if n.fa[i], err = r.f64(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("conduit: unknown kind %d", kb)
	}
	return n, nil
}

// jsonValue converts the subtree into the natural encoding/json value shape:
// objects become map-with-order-lost, leaves become scalars/slices. Used by
// MarshalJSON; the binary codec is authoritative for transport.
func (n *Node) jsonValue() interface{} {
	switch n.kind {
	case KindObject:
		m := make(map[string]interface{}, len(n.order))
		for _, name := range n.order {
			m[name] = n.lookup(name).jsonValue()
		}
		return m
	case KindEmpty:
		return nil
	default:
		return n.Value()
	}
}

// MarshalJSON renders the subtree as plain JSON (objects/scalars/arrays).
// Child insertion order is not preserved; use EncodeBinary when order
// matters.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.jsonValue())
}

// UnmarshalJSON parses plain JSON into the node. JSON numbers become floats
// unless they are integral, in which case they become int64 leaves.
func (n *Node) UnmarshalJSON(data []byte) error {
	var v interface{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return err
	}
	*n = Node{}
	return n.fromJSONValue(v)
}

func (n *Node) fromJSONValue(v interface{}) error {
	switch x := v.(type) {
	case nil:
		n.kind = KindEmpty
	case map[string]interface{}:
		n.kind = KindObject
		for name, cv := range x {
			c := n.ensureChild(name)
			if err := c.fromJSONValue(cv); err != nil {
				return err
			}
		}
	case json.Number:
		if i, err := x.Int64(); err == nil {
			n.setLeaf(KindInt)
			n.i = i
			return nil
		}
		f, err := x.Float64()
		if err != nil {
			return err
		}
		n.setLeaf(KindFloat)
		n.f = f
	case string:
		n.setLeaf(KindString)
		n.s = x
	case bool:
		n.setLeaf(KindBool)
		n.b = x
	case []interface{}:
		// Arrays decode as float arrays unless every element is integral.
		allInt := true
		for _, e := range x {
			num, ok := e.(json.Number)
			if !ok {
				return fmt.Errorf("conduit: unsupported JSON array element %T", e)
			}
			if _, err := num.Int64(); err != nil {
				allInt = false
			}
		}
		if allInt {
			n.setLeaf(KindIntArray)
			n.ia = make([]int64, len(x))
			for i, e := range x {
				n.ia[i], _ = e.(json.Number).Int64()
			}
		} else {
			n.setLeaf(KindFloatArray)
			n.fa = make([]float64, len(x))
			for i, e := range x {
				f, err := e.(json.Number).Float64()
				if err != nil {
					return err
				}
				n.fa[i] = f
			}
		}
	default:
		return fmt.Errorf("conduit: unsupported JSON value %T", v)
	}
	return nil
}
