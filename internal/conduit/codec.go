package conduit

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Binary wire format (little endian throughout):
//
//	node    := kind(u8) payload
//	object  := count(uvarint) { name(str) node }*
//	int     := zigzag varint
//	float   := u64 (IEEE 754 bits)
//	string  := str
//	bool    := u8
//	i-array := count(uvarint) { zigzag varint }*
//	f-array := count(uvarint) { u64 }*
//	str     := len(uvarint) bytes
//
// The format is self-describing and versioned by a 4-byte magic header so a
// SOMA service can reject frames from incompatible clients.

var binMagic = [4]byte{'C', 'D', 'T', 1}

// Common codec errors.
var (
	ErrBadMagic  = errors.New("conduit: bad magic header")
	ErrTruncated = errors.New("conduit: truncated input")
)

// maxDecodeItems bounds per-node child and array counts so a corrupt or
// hostile frame cannot force a huge allocation before the data is read.
const maxDecodeItems = 1 << 24

// EncodeBinary serializes the subtree to the compact binary wire format used
// for RPC transport between SOMA clients and service instances.
func (n *Node) EncodeBinary() []byte {
	buf := make([]byte, 0, 64+n.NumLeaves()*16)
	return n.AppendBinary(buf)
}

// AppendBinary appends the node's complete wire frame (magic header
// included) to dst and returns the extended slice. It is the allocation-free
// flavour of EncodeBinary for callers that manage their own buffers, e.g.
// via GetEncodeBuffer.
func (n *Node) AppendBinary(dst []byte) []byte {
	dst = append(dst, binMagic[:]...)
	return n.encodeBinary(dst)
}

// EncodeBinaryStable serializes the subtree like EncodeBinary but builds the
// frame in a pooled scratch buffer and returns an exact-size owned copy.
// EncodeBinary pre-sizes its allocation with an O(leaves) NumLeaves walk and
// typically over- or under-shoots; this flavour walks the tree once and the
// returned slice wastes no capacity — the shape wanted for frames that are
// retained (snapshot caches), where slack capacity would be pinned for the
// snapshot's lifetime.
func (n *Node) EncodeBinaryStable() []byte {
	bp := GetEncodeBuffer()
	*bp = n.AppendBinary(*bp)
	out := make([]byte, len(*bp))
	copy(out, *bp)
	PutEncodeBuffer(bp)
	return out
}

// encBufPool recycles encode buffers across publishes; the hot publish path
// would otherwise allocate one wire buffer per call.
var encBufPool = sync.Pool{New: func() interface{} {
	b := make([]byte, 0, 1024)
	return &b
}}

// maxPooledBuf bounds what goes back into the pool so one huge frame does
// not pin memory forever.
const maxPooledBuf = 1 << 16

// GetEncodeBuffer returns a pooled zero-length buffer for AppendBinary.
// Return it with PutEncodeBuffer once the encoded bytes are no longer
// referenced (after the RPC call completes).
func GetEncodeBuffer() *[]byte {
	bp := encBufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	return bp
}

// PutEncodeBuffer recycles a buffer obtained from GetEncodeBuffer. The
// caller must not use the buffer afterwards.
func PutEncodeBuffer(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		encBufPool.Put(bp)
	}
}

func appendUvarint(buf []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(tmp[:], v)
	return append(buf, tmp[:k]...)
}

func appendVarint(buf []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	k := binary.PutVarint(tmp[:], v)
	return append(buf, tmp[:k]...)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendFloat(buf []byte, f float64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(f))
	return append(buf, tmp[:]...)
}

func (n *Node) encodeBinary(buf []byte) []byte {
	buf = append(buf, byte(n.kind))
	switch n.kind {
	case KindEmpty:
	case KindObject:
		buf = appendUvarint(buf, uint64(len(n.order)))
		for _, name := range n.order {
			buf = appendString(buf, name)
			buf = n.lookup(name).encodeBinary(buf)
		}
	case KindInt:
		buf = appendVarint(buf, n.i)
	case KindFloat:
		buf = appendFloat(buf, n.f)
	case KindString:
		buf = appendString(buf, n.s)
	case KindBool:
		if n.b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindIntArray:
		buf = appendUvarint(buf, uint64(len(n.ia)))
		for _, v := range n.ia {
			buf = appendVarint(buf, v)
		}
	case KindFloatArray:
		buf = appendUvarint(buf, uint64(len(n.fa)))
		for _, v := range n.fa {
			buf = appendFloat(buf, v)
		}
	}
	return buf
}

type binReader struct {
	data []byte
	pos  int
	// arena is a bump allocator for decoded nodes: one []Node chunk serves
	// many *Node results, cutting decode allocations by the chunk size. The
	// nodes escape into the decoded tree, so chunks are never reused — only
	// the per-node allocation is amortized.
	arena []Node
	// strArena, when non-empty, is one string copy of data: str() then
	// returns substrings instead of allocating per name/value. Batch decode
	// enables it (hundreds of entries per frame make the single copy pay
	// for itself many times over); the decoded strings keep the arena alive,
	// which is fine for batch trees — their strings share the frame's
	// lifetime anyway, and merged-tree map keys are only retained for paths
	// seen for the first time.
	strArena string
	// ordArena bump-allocates the per-object child-order slices. Each carve
	// is capped at its exact count, so a later append on a decoded node
	// reallocates instead of clobbering a neighbour's carve.
	ordArena []string
}

// arenaChunk is the node-arena chunk size; frames smaller than that are
// bounded by their encoded size (every node costs at least 2 wire bytes).
const arenaChunk = 64

func (r *binReader) newNode() *Node {
	if len(r.arena) == 0 {
		n := arenaChunk
		if rem := (len(r.data)-r.pos)/2 + 1; rem < n {
			n = rem
		}
		r.arena = make([]Node, n)
	}
	nd := &r.arena[0]
	r.arena = r.arena[1:]
	return nd
}

func (r *binReader) u8() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, ErrTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *binReader) uvarint() (uint64, error) {
	v, k := binary.Uvarint(r.data[r.pos:])
	if k <= 0 {
		return 0, ErrTruncated
	}
	r.pos += k
	return v, nil
}

func (r *binReader) varint() (int64, error) {
	v, k := binary.Varint(r.data[r.pos:])
	if k <= 0 {
		return 0, ErrTruncated
	}
	r.pos += k
	return v, nil
}

func (r *binReader) str() (string, error) {
	ln, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.data)-r.pos) < ln {
		return "", ErrTruncated
	}
	var s string
	if r.strArena != "" {
		s = r.strArena[r.pos : r.pos+int(ln)]
	} else {
		s = string(r.data[r.pos : r.pos+int(ln)])
	}
	r.pos += int(ln)
	return s, nil
}

// newOrder carves an exactly-capped child-order slice from the order arena.
func (r *binReader) newOrder(count int) []string {
	if len(r.ordArena) < count {
		n := arenaChunk * 2
		if n < count {
			n = count
		}
		r.ordArena = make([]string, n)
	}
	s := r.ordArena[0:0:count]
	r.ordArena = r.ordArena[count:]
	return s
}

func (r *binReader) f64() (float64, error) {
	if len(r.data)-r.pos < 8 {
		return 0, ErrTruncated
	}
	bits := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return math.Float64frombits(bits), nil
}

// DecodeBinary parses a frame produced by EncodeBinary.
func DecodeBinary(data []byte) (*Node, error) {
	if len(data) < 4 || data[0] != binMagic[0] || data[1] != binMagic[1] ||
		data[2] != binMagic[2] || data[3] != binMagic[3] {
		return nil, ErrBadMagic
	}
	r := binReader{data: data, pos: 4}
	n, err := decodeNode(&r, 0)
	if err != nil {
		return nil, err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("conduit: %d trailing bytes", len(data)-r.pos)
	}
	return n, nil
}

// maxDepth bounds recursion so a malicious frame cannot blow the stack.
const maxDepth = 512

func decodeNode(r *binReader, depth int) (*Node, error) {
	if depth > maxDepth {
		return nil, errors.New("conduit: tree too deep")
	}
	kb, err := r.u8()
	if err != nil {
		return nil, err
	}
	n := r.newNode()
	n.kind = Kind(kb)
	switch n.kind {
	case KindEmpty:
	case KindObject:
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if count > maxDecodeItems {
			return nil, fmt.Errorf("conduit: child count %d too large", count)
		}
		if count > 0 {
			n.children = make(map[string]*Node, count)
			n.order = r.newOrder(int(count))
		}
		for i := uint64(0); i < count; i++ {
			name, err := r.str()
			if err != nil {
				return nil, err
			}
			c, err := decodeNode(r, depth+1)
			if err != nil {
				return nil, err
			}
			// A duplicate name in one encoded object merges into the earlier
			// child (leaves still overwrite), matching the wire-merge path —
			// honest encoders never emit duplicates, but a hostile frame
			// must mean the same thing on every ingest path.
			if prev, dup := n.children[name]; dup {
				prev.Merge(c)
			} else {
				n.order = append(n.order, name)
				n.children[name] = c
			}
		}
	case KindInt:
		if n.i, err = r.varint(); err != nil {
			return nil, err
		}
	case KindFloat:
		if n.f, err = r.f64(); err != nil {
			return nil, err
		}
	case KindString:
		if n.s, err = r.str(); err != nil {
			return nil, err
		}
	case KindBool:
		b, err := r.u8()
		if err != nil {
			return nil, err
		}
		n.b = b != 0
	case KindIntArray:
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if count > maxDecodeItems {
			return nil, fmt.Errorf("conduit: array count %d too large", count)
		}
		n.ia = make([]int64, count)
		for i := range n.ia {
			if n.ia[i], err = r.varint(); err != nil {
				return nil, err
			}
		}
	case KindFloatArray:
		count, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if count > maxDecodeItems {
			return nil, fmt.Errorf("conduit: array count %d too large", count)
		}
		n.fa = make([]float64, count)
		for i := range n.fa {
			if n.fa[i], err = r.f64(); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("conduit: unknown kind %d", kb)
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Batch frames: many (namespace, tree) publishes in one wire frame.
//
//	batch := 'C' 'D' 'B' 1 { entry }*
//	entry := nsLen(uvarint) ns-bytes treeLen(u32 LE) tree-frame
//
// where tree-frame is a complete standard frame (its own 'CDT1' magic plus
// one node). The entry count is implicit — decode runs to the end of the
// frame, so a zero-entry batch is just the 4-byte magic. The explicit
// treeLen lets the decoder verify each entry consumed exactly its declared
// bytes, so a corrupt tree cannot silently bleed into the next entry.

var batchMagic = [4]byte{'C', 'D', 'B', 1}

// BatchEntry is one decoded (namespace, tree) element of a batch frame.
// Consecutive entries with equal namespaces share one NS string.
type BatchEntry struct {
	NS   string
	Tree *Node
}

// AppendBatchHeader starts a batch frame: it appends the batch magic to dst.
func AppendBatchHeader(dst []byte) []byte {
	return append(dst, batchMagic[:]...)
}

// IsBatchFrame reports whether data starts with the batch magic.
func IsBatchFrame(data []byte) bool {
	return len(data) >= 4 && data[0] == batchMagic[0] && data[1] == batchMagic[1] &&
		data[2] == batchMagic[2] && data[3] == batchMagic[3]
}

// AppendBatchEntry appends one (namespace, tree) entry to a batch frame
// started with AppendBatchHeader. The tree's length field is backfilled
// after encoding, so the tree is walked exactly once.
func AppendBatchEntry(dst []byte, ns string, n *Node) []byte {
	dst = appendString(dst, ns)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = n.AppendBinary(dst)
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// AppendBatchEntryEncoded appends one (namespace, tree) entry whose tree is
// already encoded (EncodeBinary output). The bytes are copied verbatim, so a
// publisher with a fixed tree shape can encode once and append the cached
// frame on every publish. The caller is responsible for enc being a valid
// tree frame (see ValidateBinary); the server re-validates on ingest.
func AppendBatchEntryEncoded(dst []byte, ns string, enc []byte) []byte {
	dst = appendString(dst, ns)
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(enc)))
	dst = append(dst, l[:]...)
	return append(dst, enc...)
}

// DecodeBatch parses a batch frame into its entries in wire order. All
// entries decode through one shared node arena, and a run of entries with
// the same namespace reuses a single NS string, so decoding a batch of N
// same-namespace publishes costs far less than N DecodeBinary calls.
func DecodeBatch(data []byte) ([]BatchEntry, error) {
	if !IsBatchFrame(data) {
		return nil, ErrBadMagic
	}
	// One string copy of the frame serves every decoded name and value as a
	// substring — the dominant decode allocation at batch entry counts.
	r := binReader{data: data, pos: 4, strArena: string(data)}
	var entries []BatchEntry
	var lastNSBytes []byte
	var lastNS string
	for r.pos < len(data) {
		nsLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if uint64(len(data)-r.pos) < nsLen {
			return nil, ErrTruncated
		}
		nsBytes := data[r.pos : r.pos+int(nsLen)]
		r.pos += int(nsLen)
		if lastNSBytes == nil || !bytes.Equal(nsBytes, lastNSBytes) {
			lastNS = string(nsBytes)
			lastNSBytes = nsBytes
		}
		if len(data)-r.pos < 4 {
			return nil, ErrTruncated
		}
		treeLen := int(binary.LittleEndian.Uint32(data[r.pos:]))
		r.pos += 4
		if len(data)-r.pos < treeLen {
			return nil, ErrTruncated
		}
		end := r.pos + treeLen
		if treeLen < 4 || !bytes.Equal(data[r.pos:r.pos+4], binMagic[:]) {
			return nil, ErrBadMagic
		}
		r.pos += 4
		n, err := decodeNode(&r, 0)
		if err != nil {
			return nil, err
		}
		if r.pos != end {
			return nil, fmt.Errorf("conduit: batch entry length mismatch: %d bytes unconsumed", end-r.pos)
		}
		entries = append(entries, BatchEntry{NS: lastNS, Tree: n})
	}
	return entries, nil
}

// ForEachBatchEntry walks a batch frame's entry framing without decoding
// any tree: fn receives each entry's namespace bytes and its complete tree
// frame (magic included) as subslices of data, in wire order. Entry framing
// (lengths, tree magic) is verified; tree *structure* is not — pair with
// ValidateBinary when the bytes will be retained and decoded later. This is
// the allocation-free half of the server's raw batch ingest.
func ForEachBatchEntry(data []byte, fn func(ns, enc []byte) error) error {
	if !IsBatchFrame(data) {
		return ErrBadMagic
	}
	pos := 4
	for pos < len(data) {
		nsLen, k := binary.Uvarint(data[pos:])
		if k <= 0 {
			return ErrTruncated
		}
		pos += k
		if uint64(len(data)-pos) < nsLen {
			return ErrTruncated
		}
		ns := data[pos : pos+int(nsLen)]
		pos += int(nsLen)
		if len(data)-pos < 4 {
			return ErrTruncated
		}
		treeLen := int(binary.LittleEndian.Uint32(data[pos:]))
		pos += 4
		if len(data)-pos < treeLen {
			return ErrTruncated
		}
		if treeLen < 4 || !bytes.Equal(data[pos:pos+4], binMagic[:]) {
			return ErrBadMagic
		}
		if err := fn(ns, data[pos:pos+treeLen]); err != nil {
			return err
		}
		pos += treeLen
	}
	return nil
}

// ValidateBinary structurally verifies a standard tree frame — every kind
// tag, count, and length lands inside the frame and nothing trails — without
// building a single node. A frame that validates is guaranteed to decode
// (and MergeBinaryInto) without error, which is what lets the service defer
// tree materialization on ingest and still reject hostile input at the door.
func ValidateBinary(data []byte) error {
	if len(data) < 4 || data[0] != binMagic[0] || data[1] != binMagic[1] ||
		data[2] != binMagic[2] || data[3] != binMagic[3] {
		return ErrBadMagic
	}
	r := binReader{data: data, pos: 4}
	if err := validateNode(&r, 0); err != nil {
		return err
	}
	if r.pos != len(data) {
		return fmt.Errorf("conduit: %d trailing bytes", len(data)-r.pos)
	}
	return nil
}

// strSkip advances past a length-prefixed string without materializing it.
func (r *binReader) strSkip() error {
	ln, err := r.uvarint()
	if err != nil {
		return err
	}
	if uint64(len(r.data)-r.pos) < ln {
		return ErrTruncated
	}
	r.pos += int(ln)
	return nil
}

// validateNode is decodeNode's walk with construction stripped out.
func validateNode(r *binReader, depth int) error {
	if depth > maxDepth {
		return errors.New("conduit: tree too deep")
	}
	kb, err := r.u8()
	if err != nil {
		return err
	}
	switch Kind(kb) {
	case KindEmpty:
	case KindObject:
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > maxDecodeItems {
			return fmt.Errorf("conduit: child count %d too large", count)
		}
		for i := uint64(0); i < count; i++ {
			if err := r.strSkip(); err != nil {
				return err
			}
			if err := validateNode(r, depth+1); err != nil {
				return err
			}
		}
	case KindInt:
		if _, err := r.varint(); err != nil {
			return err
		}
	case KindFloat:
		if len(r.data)-r.pos < 8 {
			return ErrTruncated
		}
		r.pos += 8
	case KindString:
		if err := r.strSkip(); err != nil {
			return err
		}
	case KindBool:
		if _, err := r.u8(); err != nil {
			return err
		}
	case KindIntArray:
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > maxDecodeItems {
			return fmt.Errorf("conduit: array count %d too large", count)
		}
		for i := uint64(0); i < count; i++ {
			if _, err := r.varint(); err != nil {
				return err
			}
		}
	case KindFloatArray:
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > maxDecodeItems {
			return fmt.Errorf("conduit: array count %d too large", count)
		}
		if uint64(len(r.data)-r.pos) < count*8 {
			return ErrTruncated
		}
		r.pos += int(count) * 8
	default:
		return fmt.Errorf("conduit: unknown kind %d", kb)
	}
	return nil
}

// MergeBinaryInto merges an encoded tree frame into dst, producing exactly
// the state dst.Merge(decodedTree) would, without materializing the source
// tree: leaves are written straight from the wire walk, and the only
// allocations are for paths dst has never seen (plus owned copies of string
// and array values). dst must be a private, fully caller-owned tree — the
// service's snapshot-rebuild fold accumulator, never a shared snapshot.
// Callers should ValidateBinary the frame first: on a malformed frame the
// merge errors out part-way with already-walked paths applied.
func MergeBinaryInto(dst *Node, data []byte) error {
	return MergeBinaryIntoCached(dst, data, nil)
}

// mergeCacheDepth bounds how many tree levels the resolution memo covers;
// deeper levels fall back to the map lookup.
const mergeCacheDepth = 8

// MergeCache carries child-resolution memory across consecutive
// MergeBinaryIntoCached calls folding many frames into one accumulator.
// Monitors publish sensor by sensor, so successive frames usually share
// their ancestor path; the memo turns each shared level's map lookup into
// a pointer-and-name compare. Per depth it remembers the last (parent,
// child name) resolution; entries are invalidated when a cached subtree is
// overwritten by a leaf (object→scalar reshape), and callers must Reset
// the cache whenever they mutate the accumulator outside
// MergeBinaryIntoCached. The accumulator must be a plain owned tree (built
// by NewNode/Merge/MergeBinaryInto), never a copy-on-write overlay.
type MergeCache struct {
	parent [mergeCacheDepth]*Node
	name   [mergeCacheDepth]string
	child  [mergeCacheDepth]*Node
}

// Reset forgets every memoized resolution; required after any mutation of
// the accumulator that did not go through MergeBinaryIntoCached.
func (mc *MergeCache) Reset() { *mc = MergeCache{} }

// invalidateFrom drops memoized resolutions at depth d and deeper — called
// when the node at depth d is demoted from object to leaf, orphaning the
// subtree those entries point into.
func (mc *MergeCache) invalidateFrom(d int) {
	if d < 0 {
		d = 0
	}
	for i := d; i < mergeCacheDepth; i++ {
		mc.parent[i] = nil
		mc.name[i] = ""
		mc.child[i] = nil
	}
}

// MergeBinaryIntoCached is MergeBinaryInto with a resolution memo shared
// across calls (see MergeCache); mc may be nil.
func MergeBinaryIntoCached(dst *Node, data []byte, mc *MergeCache) error {
	if len(data) < 4 || data[0] != binMagic[0] || data[1] != binMagic[1] ||
		data[2] != binMagic[2] || data[3] != binMagic[3] {
		return ErrBadMagic
	}
	r := binReader{data: data, pos: 4}
	if err := mergeNode(&r, dst, 0, mc); err != nil {
		return err
	}
	if r.pos != len(data) {
		return fmt.Errorf("conduit: %d trailing bytes", len(data)-r.pos)
	}
	return nil
}

// mergeNode replays one encoded node onto dst with Merge's semantics:
// objects recurse child-by-child (creating children on first sight, exactly
// like ensureChild), scalars overwrite whatever dst held, and an empty
// source leaves dst untouched. When a leaf overwrites an object, memoized
// resolutions into the orphaned subtree (this depth and deeper) are
// dropped.
func mergeNode(r *binReader, dst *Node, depth int, mc *MergeCache) error {
	if depth > maxDepth {
		return errors.New("conduit: tree too deep")
	}
	kb, err := r.u8()
	if err != nil {
		return err
	}
	k := Kind(kb)
	if k != KindObject && k != KindEmpty && mc != nil && dst.kind == KindObject {
		mc.invalidateFrom(depth)
	}
	switch k {
	case KindEmpty:
	case KindObject:
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > maxDecodeItems {
			return fmt.Errorf("conduit: child count %d too large", count)
		}
		for i := uint64(0); i < count; i++ {
			ln, err := r.uvarint()
			if err != nil {
				return err
			}
			if uint64(len(r.data)-r.pos) < ln {
				return ErrTruncated
			}
			nameB := r.data[r.pos : r.pos+int(ln)]
			r.pos += int(ln)
			// The depth memo first: consecutive single-leaf frames usually
			// share their ancestor path, making this a pointer compare
			// instead of a map probe into a wide fan-out level.
			if mc != nil && depth < mergeCacheDepth &&
				mc.parent[depth] == dst && mc.name[depth] == string(nameB) {
				if err := mergeNode(r, mc.child[depth], depth+1, mc); err != nil {
					return err
				}
				continue
			}
			// Inline ensureChild with a byte-slice key: the map probe on the
			// hot repeated-path case allocates nothing.
			if dst.kind != KindObject {
				dst.kind = KindObject
				dst.i, dst.f, dst.s, dst.b, dst.ia, dst.fa = 0, 0, "", false, nil, nil
			}
			dst.flatten()
			if dst.children == nil {
				dst.children = make(map[string]*Node)
			}
			c, ok := dst.children[string(nameB)]
			if !ok {
				c = &Node{}
				name := string(nameB)
				dst.children[name] = c
				dst.order = append(dst.order, name)
			}
			if mc != nil && depth < mergeCacheDepth {
				mc.parent[depth] = dst
				mc.name[depth] = string(nameB) // copy on memo refresh only
				mc.child[depth] = c
			}
			if err := mergeNode(r, c, depth+1, mc); err != nil {
				return err
			}
		}
	case KindInt:
		v, err := r.varint()
		if err != nil {
			return err
		}
		dst.setLeaf(k)
		dst.i, dst.f, dst.s, dst.b, dst.ia, dst.fa = v, 0, "", false, nil, nil
	case KindFloat:
		v, err := r.f64()
		if err != nil {
			return err
		}
		dst.setLeaf(k)
		dst.i, dst.f, dst.s, dst.b, dst.ia, dst.fa = 0, v, "", false, nil, nil
	case KindString:
		v, err := r.str()
		if err != nil {
			return err
		}
		dst.setLeaf(k)
		dst.i, dst.f, dst.s, dst.b, dst.ia, dst.fa = 0, 0, v, false, nil, nil
	case KindBool:
		bv, err := r.u8()
		if err != nil {
			return err
		}
		dst.setLeaf(k)
		dst.i, dst.f, dst.s, dst.b, dst.ia, dst.fa = 0, 0, "", bv != 0, nil, nil
	case KindIntArray:
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > maxDecodeItems {
			return fmt.Errorf("conduit: array count %d too large", count)
		}
		ia := make([]int64, count)
		for i := range ia {
			if ia[i], err = r.varint(); err != nil {
				return err
			}
		}
		dst.setLeaf(k)
		dst.i, dst.f, dst.s, dst.b, dst.ia, dst.fa = 0, 0, "", false, ia, nil
	case KindFloatArray:
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > maxDecodeItems {
			return fmt.Errorf("conduit: array count %d too large", count)
		}
		fa := make([]float64, count)
		for i := range fa {
			if fa[i], err = r.f64(); err != nil {
				return err
			}
		}
		dst.setLeaf(k)
		dst.i, dst.f, dst.s, dst.b, dst.ia, dst.fa = 0, 0, "", false, nil, fa
	default:
		return fmt.Errorf("conduit: unknown kind %d", kb)
	}
	return nil
}

// jsonValue converts the subtree into the natural encoding/json value shape:
// objects become map-with-order-lost, leaves become scalars/slices. Used by
// MarshalJSON; the binary codec is authoritative for transport.
func (n *Node) jsonValue() interface{} {
	switch n.kind {
	case KindObject:
		m := make(map[string]interface{}, len(n.order))
		for _, name := range n.order {
			m[name] = n.lookup(name).jsonValue()
		}
		return m
	case KindEmpty:
		return nil
	default:
		return n.Value()
	}
}

// MarshalJSON renders the subtree as plain JSON (objects/scalars/arrays).
// Child insertion order is not preserved; use EncodeBinary when order
// matters.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(n.jsonValue())
}

// UnmarshalJSON parses plain JSON into the node. JSON numbers become floats
// unless they are integral, in which case they become int64 leaves. The
// input must be exactly one JSON document: trailing non-whitespace after
// the first value is an error, not silently ignored — this is a wire
// boundary, and "parses the prefix" is how smuggled payloads hide.
func (n *Node) UnmarshalJSON(data []byte) error {
	var v interface{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return err
	}
	if tok, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("conduit: trailing data after JSON document (next token %v, err %v)", tok, err)
	}
	*n = Node{}
	return n.fromJSONValue(v)
}

func (n *Node) fromJSONValue(v interface{}) error {
	switch x := v.(type) {
	case nil:
		n.kind = KindEmpty
	case map[string]interface{}:
		n.kind = KindObject
		for name, cv := range x {
			c := n.ensureChild(name)
			if err := c.fromJSONValue(cv); err != nil {
				return err
			}
		}
	case json.Number:
		if i, err := x.Int64(); err == nil {
			n.setLeaf(KindInt)
			n.i = i
			return nil
		}
		f, err := x.Float64()
		if err != nil {
			return err
		}
		n.setLeaf(KindFloat)
		n.f = f
	case string:
		n.setLeaf(KindString)
		n.s = x
	case bool:
		n.setLeaf(KindBool)
		n.b = x
	case []interface{}:
		// Arrays decode as float arrays unless every element is integral.
		allInt := true
		for _, e := range x {
			num, ok := e.(json.Number)
			if !ok {
				return fmt.Errorf("conduit: unsupported JSON array element %T", e)
			}
			if _, err := num.Int64(); err != nil {
				allInt = false
			}
		}
		if allInt {
			n.setLeaf(KindIntArray)
			n.ia = make([]int64, len(x))
			for i, e := range x {
				n.ia[i], _ = e.(json.Number).Int64()
			}
		} else {
			n.setLeaf(KindFloatArray)
			n.fa = make([]float64, len(x))
			for i, e := range x {
				f, err := e.(json.Number).Float64()
				if err != nil {
					return err
				}
				n.fa[i] = f
			}
		}
	default:
		return fmt.Errorf("conduit: unsupported JSON value %T", v)
	}
	return nil
}
