package conduit

import (
	"strconv"
	"testing"
)

// mkTree builds a small host-style tree: base/<i>/{a,b} for i in [lo, hi).
func mkTree(base string, lo, hi int) *Node {
	n := NewNode()
	for i := lo; i < hi; i++ {
		p := base + "/" + strconv.Itoa(i)
		n.SetInt(p+"/a", int64(i))
		n.SetFloat(p+"/b", float64(i)/2)
	}
	return n
}

func TestMergeCOWMatchesMerge(t *testing.T) {
	cases := []struct {
		name     string
		dst, src func() *Node
	}{
		{"disjoint", func() *Node { return mkTree("h0", 0, 4) }, func() *Node { return mkTree("h1", 0, 4) }},
		{"overwrite", func() *Node { return mkTree("h0", 0, 8) }, func() *Node { return mkTree("h0", 2, 6) }},
		{"extend", func() *Node { return mkTree("h0", 0, 4) }, func() *Node { return mkTree("h0", 4, 8) }},
		{"leaf over object", func() *Node { return mkTree("h0", 0, 2) }, func() *Node {
			n := NewNode()
			n.SetString("h0/0", "gone")
			return n
		}},
		{"object over leaf", func() *Node {
			n := NewNode()
			n.SetString("h0", "leaf")
			return n
		}, func() *Node { return mkTree("h0", 0, 2) }},
		{"empty dst", func() *Node { return NewNode() }, func() *Node { return mkTree("h0", 0, 2) }},
		{"empty src", func() *Node { return mkTree("h0", 0, 2) }, func() *Node { return NewNode() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst, src := tc.dst(), tc.src()
			before := dst.Clone()
			want := dst.Clone()
			want.Merge(src)
			got := MergeCOW(dst, src)
			if !got.Equal(want) {
				t.Fatalf("MergeCOW disagrees with Merge:\ngot:\n%s\nwant:\n%s", got.Format(), want.Format())
			}
			if !dst.Equal(before) {
				t.Fatalf("MergeCOW mutated dst:\n%s", dst.Format())
			}
		})
	}
}

// TestMergeCOWChain drives many successive small merges onto a wide base so
// the overlay machinery exercises both compaction paths (chain collapse and
// full flatten), and checks the result stays equivalent to mutable Merge at
// every step — including its serialized form, which pins child order.
func TestMergeCOWChain(t *testing.T) {
	snap := mkTree("host", 0, 64)
	mutable := snap.Clone()
	for step := 0; step < 200; step++ {
		upd := mkTree("host", step%80, step%80+2)
		prev := snap
		prevCopy := prev.Clone()
		snap = MergeCOW(snap, upd)
		mutable.Merge(upd)
		if !snap.Equal(mutable) {
			t.Fatalf("step %d: snapshot diverged from Merge: %v", step, snap.Diff(mutable))
		}
		if !prev.Equal(prevCopy) {
			t.Fatalf("step %d: MergeCOW mutated the previous snapshot", step)
		}
	}
	gotBytes := snap.EncodeBinary()
	wantBytes := mutable.EncodeBinary()
	if string(gotBytes) != string(wantBytes) {
		t.Fatal("overlay snapshot serializes differently from the flat merge")
	}
	if n := snap.NumLeaves(); n != mutable.NumLeaves() {
		t.Fatalf("NumLeaves = %d, want %d", n, mutable.NumLeaves())
	}
}

// TestMergeCOWSharing verifies untouched subtrees are shared by reference,
// not copied — the property that makes snapshot rebuilds O(delta).
func TestMergeCOWSharing(t *testing.T) {
	dst := mkTree("h0", 0, 4)
	dst.Merge(mkTree("h1", 0, 4))
	src := mkTree("h1", 4, 5)
	out := MergeCOW(dst, src)
	d, _ := dst.Get("h0")
	o, _ := out.Get("h0")
	if o != d {
		t.Fatal("untouched subtree was copied instead of shared")
	}
	s, _ := src.Get("h1/4")
	o4, _ := out.Get("h1/4")
	if o4 != s {
		t.Fatal("src-only subtree was copied instead of shared")
	}
}

// TestOverlayMutationFlattens checks the mutating entry points materialize a
// COW overlay before writing, so later writes never scribble on shared maps.
func TestOverlayMutationFlattens(t *testing.T) {
	dst := mkTree("host", 0, 32)
	dstCopy := dst.Clone()
	out := MergeCOW(dst, mkTree("host", 10, 12))

	out.SetInt("extra/leaf", 7)
	if v, ok := out.Int("extra/leaf"); !ok || v != 7 {
		t.Fatal("write to overlay node lost")
	}
	if !out.Has("host/31/a") {
		t.Fatal("flattened overlay lost base children")
	}
	if !dst.Equal(dstCopy) {
		t.Fatal("mutating the overlay changed the base tree")
	}

	out2 := MergeCOW(dst, mkTree("host", 2, 4))
	if !out2.Remove("host") {
		t.Fatal("Remove on overlay node failed")
	}
	if out2.Has("host") {
		t.Fatal("child still present after Remove")
	}
	if !dst.Has("host/0/a") || !dst.Equal(dstCopy) {
		t.Fatal("Remove on the overlay changed the base tree")
	}
}

func TestAttach(t *testing.T) {
	child := mkTree("x", 0, 2)
	n := NewNode()
	n.SetInt("first", 1)
	n.Attach("data", child)
	if got := n.Child("data"); got != child {
		t.Fatal("Attach copied instead of sharing")
	}
	if names := n.ChildNames(); len(names) != 2 || names[0] != "first" || names[1] != "data" {
		t.Fatalf("ChildNames = %v", names)
	}
	// Replacing keeps the original order slot.
	other := NewNode()
	other.SetBool("ok", true)
	n.Attach("data", other)
	if got := n.Child("data"); got != other {
		t.Fatal("Attach did not replace existing child")
	}
	if n.NumChildren() != 2 {
		t.Fatalf("NumChildren = %d after replace", n.NumChildren())
	}
	// Attaching to a leaf converts it to an object, like Fetch does.
	leaf := NewNode()
	leaf.SetInt("", 5)
	leaf.Attach("c", child)
	if leaf.Kind() != KindObject || leaf.Child("c") != child {
		t.Fatal("Attach on a leaf did not convert it to an object")
	}
}

func TestAppendBinaryAndPool(t *testing.T) {
	n := mkTree("host", 0, 16)
	want := n.EncodeBinary()

	bp := GetEncodeBuffer()
	*bp = n.AppendBinary(*bp)
	if string(*bp) != string(want) {
		t.Fatal("AppendBinary differs from EncodeBinary")
	}
	dec, err := DecodeBinary(*bp)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(n) {
		t.Fatal("round trip through pooled buffer failed")
	}
	PutEncodeBuffer(bp)

	// Reused buffers must be reset to empty.
	bp2 := GetEncodeBuffer()
	if len(*bp2) != 0 {
		t.Fatalf("pooled buffer not reset: len=%d", len(*bp2))
	}
	PutEncodeBuffer(bp2)

	// Appending after existing content preserves the prefix.
	buf := []byte("prefix")
	buf = n.AppendBinary(buf)
	if string(buf[:6]) != "prefix" {
		t.Fatal("AppendBinary clobbered existing content")
	}
	dec2, err := DecodeBinary(buf[6:])
	if err != nil || !dec2.Equal(n) {
		t.Fatalf("decode after prefix failed: %v", err)
	}
}
