package conduit

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func sampleTree(i int) *Node {
	n := NewNode()
	n.SetInt("seq", int64(i))
	n.SetFloat("val", float64(i)*1.5)
	n.SetString("host", "node042")
	return n
}

func encodeSampleBatch(namespaces []string) []byte {
	buf := AppendBatchHeader(nil)
	for i, ns := range namespaces {
		buf = AppendBatchEntry(buf, ns, sampleTree(i))
	}
	return buf
}

func TestBatchRoundTrip(t *testing.T) {
	namespaces := []string{"workflow", "workflow", "hardware", "workflow", "performance"}
	buf := encodeSampleBatch(namespaces)
	entries, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if len(entries) != len(namespaces) {
		t.Fatalf("got %d entries, want %d", len(entries), len(namespaces))
	}
	for i, e := range entries {
		if e.NS != namespaces[i] {
			t.Errorf("entry %d: ns %q, want %q", i, e.NS, namespaces[i])
		}
		if v, ok := e.Tree.Int("seq"); !ok || v != int64(i) {
			t.Errorf("entry %d: seq %d ok=%v, want %d", i, v, ok, i)
		}
		if s, ok := e.Tree.StringVal("host"); !ok || s != "node042" {
			t.Errorf("entry %d: host %q", i, s)
		}
	}
}

// Consecutive equal namespaces must share one string — the decode fast path
// the server-side batch ingest relies on for its run grouping.
func TestBatchNamespaceStringReuse(t *testing.T) {
	buf := encodeSampleBatch([]string{"workflow", "workflow", "workflow"})
	entries, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	for i := 1; i < len(entries); i++ {
		// Compare string headers: same backing data means the decoder reused
		// the previous entry's string rather than allocating a new one.
		if entries[i].NS != entries[0].NS {
			t.Fatalf("entry %d ns differs", i)
		}
	}
}

func TestBatchZeroEntries(t *testing.T) {
	buf := AppendBatchHeader(nil)
	entries, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("DecodeBatch(header only): %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("got %d entries, want 0", len(entries))
	}
}

func TestBatchBadMagic(t *testing.T) {
	if _, err := DecodeBatch(nil); !errors.Is(err, ErrBadMagic) {
		t.Errorf("nil input: err %v, want ErrBadMagic", err)
	}
	if _, err := DecodeBatch([]byte{'C', 'D', 'T', 1}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("tree magic: err %v, want ErrBadMagic", err)
	}
	if _, err := DecodeBatch([]byte{'X', 'X'}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("short garbage: err %v, want ErrBadMagic", err)
	}
}

// Every strict prefix of a valid batch must fail cleanly (or decode to fewer
// complete entries — prefixes ending exactly on an entry boundary are valid
// shorter batches), never panic.
func TestBatchTruncations(t *testing.T) {
	full := encodeSampleBatch([]string{"workflow", "hardware"})
	for cut := 0; cut < len(full); cut++ {
		entries, err := DecodeBatch(full[:cut])
		if err != nil {
			continue
		}
		if len(entries) > 2 {
			t.Fatalf("prefix %d decoded %d entries", cut, len(entries))
		}
	}
}

func TestBatchCorruptTreeLength(t *testing.T) {
	buf := AppendBatchHeader(nil)
	buf = AppendBatchEntry(buf, "workflow", sampleTree(0))
	// The u32 tree length sits right after the namespace string: magic(4) +
	// nsLen uvarint(1) + ns(8).
	lenAt := 4 + 1 + len("workflow")

	// Huge declared length: claims more bytes than the frame holds.
	huge := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(huge[lenAt:], 0xFFFFFF00)
	if _, err := DecodeBatch(huge); !errors.Is(err, ErrTruncated) {
		t.Errorf("huge length: err %v, want ErrTruncated", err)
	}

	// Zero declared length: too short to hold the inner magic.
	zero := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint32(zero[lenAt:], 0)
	if _, err := DecodeBatch(zero); !errors.Is(err, ErrBadMagic) {
		t.Errorf("zero length: err %v, want ErrBadMagic", err)
	}

	// Short-by-one declared length: the tree decodes past its slot.
	short := append([]byte(nil), buf...)
	real := binary.LittleEndian.Uint32(short[lenAt:])
	binary.LittleEndian.PutUint32(short[lenAt:], real-1)
	if _, err := DecodeBatch(short); err == nil {
		t.Error("short length: decode succeeded, want error")
	}

	// Long-by-N declared length over a two-entry frame: entry 0 claims bytes
	// belonging to entry 1, so its decode stops before the declared end.
	two := AppendBatchHeader(nil)
	two = AppendBatchEntry(two, "workflow", sampleTree(0))
	two = AppendBatchEntry(two, "workflow", sampleTree(1))
	long := append([]byte(nil), two...)
	binary.LittleEndian.PutUint32(long[lenAt:], real+3)
	if _, err := DecodeBatch(long); err == nil {
		t.Error("long length: decode succeeded, want error")
	} else if !strings.Contains(err.Error(), "length mismatch") && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrTruncated) {
		t.Errorf("long length: unexpected error %v", err)
	}
}

func TestBatchCorruptInnerMagic(t *testing.T) {
	buf := AppendBatchHeader(nil)
	buf = AppendBatchEntry(buf, "workflow", sampleTree(0))
	innerMagicAt := 4 + 1 + len("workflow") + 4
	buf[innerMagicAt] = 'X'
	if _, err := DecodeBatch(buf); !errors.Is(err, ErrBadMagic) {
		t.Errorf("corrupt inner magic: err %v, want ErrBadMagic", err)
	}
}

func TestBatchHugeNamespaceLength(t *testing.T) {
	buf := AppendBatchHeader(nil)
	// uvarint claiming a ~268M-byte namespace with no bytes behind it.
	buf = append(buf, 0x80, 0x80, 0x80, 0x80, 0x01)
	if _, err := DecodeBatch(buf); !errors.Is(err, ErrTruncated) {
		t.Errorf("huge ns length: err %v, want ErrTruncated", err)
	}
}

func BenchmarkDecodeBatch(b *testing.B) {
	buf := AppendBatchHeader(nil)
	for i := 0; i < 512; i++ {
		buf = AppendBatchEntry(buf, "workflow", sampleTree(i))
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeBatchSingleLeaf is the load-harness shape: many entries,
// each a root object with one float leaf (one logical publisher's sample).
func BenchmarkDecodeBatchSingleLeaf(b *testing.B) {
	frame := AppendBatchHeader(nil)
	const entries = 512
	for i := 0; i < entries; i++ {
		n := NewNode()
		n.SetFloat(fmt.Sprintf("c%05d", i), float64(i))
		frame = AppendBatchEntry(frame, "hardware", n)
	}
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := DecodeBatch(frame)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != entries {
			b.Fatal("entry count")
		}
	}
}

// BenchmarkAppendBatchEntrySingleLeaf is the client coalescer's per-publish
// encode cost for the same shape.
func BenchmarkAppendBatchEntrySingleLeaf(b *testing.B) {
	n := NewNode()
	n.SetFloat("c00042", 42)
	buf := AppendBatchHeader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendBatchEntry(buf[:4], "hardware", n)
	}
}

// richTree exercises every leaf kind plus nesting — the shape differential
// tests want when comparing the wire-merge path against decode-then-merge.
func richTree(i int) *Node {
	n := NewNode()
	n.SetInt("meta/seq", int64(i))
	n.SetFloat("meta/val", float64(i)*0.25)
	n.SetString("meta/host", fmt.Sprintf("cn%04d", i))
	n.SetBool("meta/ok", i%2 == 0)
	n.SetIntArray("arr/ints", []int64{int64(i), int64(i) * 2, -1})
	n.SetFloatArray("arr/floats", []float64{0.5, float64(i)})
	return n
}

func TestValidateBinaryAcceptsValidFrames(t *testing.T) {
	for i := 0; i < 4; i++ {
		enc := richTree(i).EncodeBinary()
		if err := ValidateBinary(enc); err != nil {
			t.Fatalf("valid frame %d rejected: %v", i, err)
		}
	}
	if err := ValidateBinary(NewNode().EncodeBinary()); err != nil {
		t.Fatalf("empty tree rejected: %v", err)
	}
}

func TestValidateBinaryRejectsHostileFrames(t *testing.T) {
	enc := richTree(7).EncodeBinary()
	// Every strict prefix must fail: a frame that validates must consume
	// exactly its bytes, so truncations either break mid-field or leave the
	// walk short of the end.
	for cut := 0; cut < len(enc); cut++ {
		if err := ValidateBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d validated", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] = 'X'
	if err := ValidateBinary(bad); err == nil {
		t.Fatal("corrupt magic validated")
	}
	kindCorrupt := append([]byte(nil), enc...)
	kindCorrupt[4] = 0xEE // root kind byte
	if err := ValidateBinary(kindCorrupt); err == nil {
		t.Fatal("unknown kind validated")
	}
	trailing := append(append([]byte(nil), enc...), 0xAB)
	if err := ValidateBinary(trailing); err == nil {
		t.Fatal("trailing bytes validated")
	}
}

// MergeBinaryInto must land exactly where Merge of the decoded tree lands,
// across overwrites, re-shaping (leaf<->object), and every value kind.
func TestMergeBinaryIntoMatchesMerge(t *testing.T) {
	srcs := []*Node{richTree(1), richTree(2)}
	reshape := NewNode()
	reshape.SetString("meta", "now-a-leaf") // object -> leaf
	srcs = append(srcs, reshape)
	back := NewNode()
	back.SetInt("meta/seq", 99) // leaf -> object again
	srcs = append(srcs, back)

	viaWire, viaMerge := NewNode(), NewNode()
	for i, src := range srcs {
		enc := src.EncodeBinary()
		if err := ValidateBinary(enc); err != nil {
			t.Fatalf("step %d: validate: %v", i, err)
		}
		if err := MergeBinaryInto(viaWire, enc); err != nil {
			t.Fatalf("step %d: wire merge: %v", i, err)
		}
		viaMerge.Merge(src)
		if !bytes.Equal(viaWire.EncodeBinary(), viaMerge.EncodeBinary()) {
			t.Fatalf("step %d: wire merge diverged from Merge:\nwire:  %s\nmerge: %s",
				i, viaWire.Format(), viaMerge.Format())
		}
	}
}

func TestForEachBatchEntryMatchesDecode(t *testing.T) {
	frame := AppendBatchHeader(nil)
	nss := []string{"workflow", "workflow", "hardware", "application"}
	for i, ns := range nss {
		frame = AppendBatchEntry(frame, ns, richTree(i))
	}
	want, err := DecodeBatch(frame)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = ForEachBatchEntry(frame, func(ns, enc []byte) error {
		if string(ns) != want[i].NS {
			t.Fatalf("entry %d ns = %q, want %q", i, ns, want[i].NS)
		}
		n, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("entry %d enc does not decode: %v", i, err)
		}
		if !bytes.Equal(n.EncodeBinary(), want[i].Tree.EncodeBinary()) {
			t.Fatalf("entry %d tree mismatch", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("scanned %d entries, want %d", i, len(want))
	}
	// The scan enforces entry framing even though it skips tree structure.
	if err := ForEachBatchEntry(frame[:len(frame)-2], func(ns, enc []byte) error { return nil }); err == nil {
		t.Fatal("truncated batch framing accepted")
	}
}
