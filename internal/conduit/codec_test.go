package conduit

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleNode() *Node {
	n := NewNode()
	n.SetString("RP/task.000000/1698435412.6060030", "launch_start")
	n.SetString("RP/task.000000/1698435412.9642950", "exec_start")
	n.SetInt("PROC/cn4302/Uptime", 49902)
	n.SetInt("PROC/cn4302/Num Processes", 3)
	n.SetIntArray("PROC/cn4302/stat/cpu", []int64{10749, 865, 685, 9293, 999, 745})
	n.SetFloatArray("TAU/rank0/times", []float64{0.5, 12.25, math.Pi})
	n.SetFloat("neg", -1234.5e-8)
	n.SetBool("flag", true)
	n.Fetch("empty/leaf") // deliberately empty node
	return n
}

func TestBinaryRoundTrip(t *testing.T) {
	n := sampleNode()
	enc := n.EncodeBinary()
	dec, err := DecodeBinary(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !n.Equal(dec) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", n.Format(), dec.Format())
	}
	// Order must survive too.
	if !reflect.DeepEqual(n.Leaves(), dec.Leaves()) {
		t.Fatalf("leaf order changed: %v vs %v", n.Leaves(), dec.Leaves())
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := DecodeBinary([]byte{1, 2, 3, 4, 5}); err != ErrBadMagic {
		t.Fatalf("err = %v want ErrBadMagic", err)
	}
	if _, err := DecodeBinary(nil); err != ErrBadMagic {
		t.Fatalf("nil input err = %v", err)
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	enc := sampleNode().EncodeBinary()
	for _, cut := range []int{5, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeBinary(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryRejectsTrailingGarbage(t *testing.T) {
	enc := append(sampleNode().EncodeBinary(), 0xde, 0xad)
	if _, err := DecodeBinary(enc); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("err = %v want trailing-bytes error", err)
	}
}

func TestBinaryRejectsUnknownKind(t *testing.T) {
	frame := append([]byte{}, binMagic[:]...)
	frame = append(frame, 0xEE)
	if _, err := DecodeBinary(frame); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBinaryRejectsHugeCounts(t *testing.T) {
	// Object claiming 2^40 children must be rejected before allocation.
	frame := append([]byte{}, binMagic[:]...)
	frame = append(frame, byte(KindObject))
	frame = appendUvarint(frame, 1<<40)
	if _, err := DecodeBinary(frame); err == nil {
		t.Fatal("huge child count accepted")
	}
	frame = append([]byte{}, binMagic[:]...)
	frame = append(frame, byte(KindIntArray))
	frame = appendUvarint(frame, 1<<40)
	if _, err := DecodeBinary(frame); err == nil {
		t.Fatal("huge array count accepted")
	}
}

func TestBinaryRejectsDeepNesting(t *testing.T) {
	n := NewNode()
	path := strings.Repeat("a/", maxDepth+10) + "leaf"
	n.SetInt(path, 1)
	if _, err := DecodeBinary(n.EncodeBinary()); err == nil {
		t.Fatal("over-deep tree accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	n := NewNode()
	n.SetInt("i", 42)
	n.SetFloat("f", 1.5)
	n.SetString("s", "x")
	n.SetBool("b", false)
	n.SetIntArray("ia", []int64{1, 2})
	n.SetFloatArray("fa", []float64{0.5, 2})

	data, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	// fa decodes as float array (0.5 not integral); ia stays int.
	if v, ok := back.Int("i"); !ok || v != 42 {
		t.Errorf("i = %v,%v", v, ok)
	}
	if v, ok := back.Float("f"); !ok || v != 1.5 {
		t.Errorf("f = %v,%v", v, ok)
	}
	if v, ok := back.IntArray("ia"); !ok || !reflect.DeepEqual(v, []int64{1, 2}) {
		t.Errorf("ia = %v,%v", v, ok)
	}
	if v, ok := back.FloatArray("fa"); !ok || v[0] != 0.5 {
		t.Errorf("fa = %v,%v", v, ok)
	}
}

func TestJSONNullAndNested(t *testing.T) {
	var n Node
	if err := json.Unmarshal([]byte(`{"a":{"b":null,"c":"x"}}`), &n); err != nil {
		t.Fatal(err)
	}
	c, ok := n.Get("a/b")
	if !ok || !c.IsEmpty() {
		t.Error("null should decode to empty node")
	}
	if v, _ := n.StringVal("a/c"); v != "x" {
		t.Error("nested string lost")
	}
}

func TestJSONRejectsMixedArray(t *testing.T) {
	var n Node
	if err := json.Unmarshal([]byte(`{"a":[1,"two"]}`), &n); err == nil {
		t.Fatal("mixed-type array accepted")
	}
}

// randomNode builds a random tree for property tests.
func randomNode(r *rand.Rand, depth int) *Node {
	n := NewNode()
	if depth > 3 {
		n.SetInt("", r.Int63())
		return n
	}
	kids := r.Intn(4) + 1
	for i := 0; i < kids; i++ {
		name := string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26)))
		switch r.Intn(6) {
		case 0:
			n.SetInt(name, r.Int63()-r.Int63())
		case 1:
			n.SetFloat(name, r.NormFloat64()*1e6)
		case 2:
			n.SetString(name, strings.Repeat("s", r.Intn(20)))
		case 3:
			n.SetBool(name, r.Intn(2) == 0)
		case 4:
			arr := make([]float64, r.Intn(8))
			for j := range arr {
				arr[j] = r.Float64()
			}
			n.SetFloatArray(name, arr)
		case 5:
			sub := randomNode(r, depth+1)
			n.ensureChild(name).Merge(sub)
		}
	}
	return n
}

// Property: binary encode/decode is the identity on arbitrary trees.
func TestQuickBinaryRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNode(r, 0)
		dec, err := DecodeBinary(n.EncodeBinary())
		return err == nil && n.Equal(dec)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge(x, x) == x (idempotence) and Clone is equal but detached.
func TestQuickMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomNode(r, 0)
		c := n.Clone()
		n.Merge(c)
		return n.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff(a,a) is empty; Diff(a,b) nonempty when one leaf changed.
func TestQuickDiff(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomNode(r, 0)
		if len(a.Diff(a)) != 0 {
			return false
		}
		b := a.Clone()
		b.SetString("zz_injected/leaf", "difference")
		return len(a.Diff(b)) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Fuzz-ish robustness: decoding random bytes must never panic.
func TestDecodeRandomBytesNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		buf := make([]byte, r.Intn(200))
		r.Read(buf)
		if r.Intn(2) == 0 && len(buf) >= 4 {
			copy(buf, binMagic[:]) // valid magic, garbage body
		}
		_, _ = DecodeBinary(buf) // must not panic
	}
}

func BenchmarkConduitCodecs(b *testing.B) {
	n := sampleNode()
	b.Run("binary-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = n.EncodeBinary()
		}
	})
	enc := n.EncodeBinary()
	b.Run("binary-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeBinary(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(n); err != nil {
				b.Fatal(err)
			}
		}
	})
	jenc, _ := json.Marshal(n)
	b.Run("json-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var back Node
			if err := json.Unmarshal(jenc, &back); err != nil {
				b.Fatal(err)
			}
		}
	})
}
