package conduit

import (
	"bytes"
	"testing"
)

// FuzzDecodeBatch feeds arbitrary bytes through the batch decoder. The
// decoder must never panic, and anything it accepts must re-encode to a
// frame that decodes to the same entries (the decode → encode → decode
// fixpoint).
func FuzzDecodeBatch(f *testing.F) {
	// Valid frames: empty batch, one entry, a multi-namespace run.
	f.Add(AppendBatchHeader(nil))
	one := AppendBatchEntry(AppendBatchHeader(nil), "workflow", sampleTree(1))
	f.Add(one)
	multi := AppendBatchHeader(nil)
	for i, ns := range []string{"workflow", "workflow", "hardware", "performance"} {
		multi = AppendBatchEntry(multi, ns, sampleTree(i))
	}
	f.Add(multi)
	// Reshape seed: one path flips object→leaf→object across entries, the
	// sequence the cached wire-merge must invalidate its memo through.
	reshape := AppendBatchHeader(nil)
	ra := NewNode()
	ra.SetInt("m/x/y", 1)
	rb := NewNode()
	rb.SetString("m/x", "flat")
	rc := NewNode()
	rc.SetInt("m/x/z", 2)
	for _, n := range []*Node{ra, rb, rc} {
		reshape = AppendBatchEntry(reshape, "workflow", n)
	}
	f.Add(reshape)
	// Hostile seeds: truncations, corrupt length, corrupt magic.
	f.Add(multi[:len(multi)-3])
	f.Add(multi[:7])
	corrupt := append([]byte(nil), one...)
	corrupt[6] = 0xFF
	f.Add(corrupt)
	badMagic := append([]byte(nil), one...)
	badMagic[0] = 'X'
	f.Add(badMagic)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeBatch(data)
		scanned := 0
		// Cumulative accumulators across the frame's entries: the cached
		// wire-merge must agree with tree Merge even when entries reshape
		// paths the cache has memoized (object→leaf→object flips are the
		// stale-pointer hunting ground).
		accCached, accPlain := NewNode(), NewNode()
		var mc MergeCache
		scanErr := ForEachBatchEntry(data, func(ns, enc []byte) error {
			// Anything the full decoder accepts, the validating scan must
			// accept too — the raw ingest path depends on that agreement.
			if err == nil {
				if scanned >= len(entries) {
					t.Fatalf("scan found more entries than DecodeBatch (%d)", len(entries))
				}
				if string(ns) != entries[scanned].NS {
					t.Fatalf("entry %d ns: scan %q vs decode %q", scanned, ns, entries[scanned].NS)
				}
				if verr := ValidateBinary(enc); verr != nil {
					t.Fatalf("entry %d validated false negative: %v", scanned, verr)
				}
				merged := NewNode()
				if merr := MergeBinaryInto(merged, enc); merr != nil {
					t.Fatalf("entry %d wire-merge failed on validated bytes: %v", scanned, merr)
				}
				want := NewNode()
				want.Merge(entries[scanned].Tree)
				if !bytes.Equal(merged.EncodeBinary(), want.EncodeBinary()) {
					t.Fatalf("entry %d: MergeBinaryInto differs from Merge of decoded tree", scanned)
				}
				if merr := MergeBinaryIntoCached(accCached, enc, &mc); merr != nil {
					t.Fatalf("entry %d cached wire-merge failed on validated bytes: %v", scanned, merr)
				}
				accPlain.Merge(entries[scanned].Tree)
				if !bytes.Equal(accCached.EncodeBinary(), accPlain.EncodeBinary()) {
					t.Fatalf("entry %d: cumulative cached wire-merge diverged from Merge", scanned)
				}
			}
			scanned++
			return nil
		})
		if err != nil {
			return
		}
		if scanErr != nil {
			t.Fatalf("scan rejected a frame DecodeBatch accepted: %v", scanErr)
		}
		if scanned != len(entries) {
			t.Fatalf("scan found %d entries, decode found %d", scanned, len(entries))
		}
		re := AppendBatchHeader(nil)
		for _, e := range entries {
			re = AppendBatchEntry(re, e.NS, e.Tree)
		}
		again, err := DecodeBatch(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("re-decode entry count %d, want %d", len(again), len(entries))
		}
		for i := range again {
			if again[i].NS != entries[i].NS {
				t.Fatalf("entry %d ns changed: %q vs %q", i, again[i].NS, entries[i].NS)
			}
			if !bytes.Equal(again[i].Tree.EncodeBinary(), entries[i].Tree.EncodeBinary()) {
				t.Fatalf("entry %d tree changed across re-encode", i)
			}
		}
	})
}
