// Package conduit implements a hierarchical, schema-free data model in the
// spirit of LLNL's Conduit library, which the SOMA paper uses to represent
// all monitoring data. A Node is an ordered tree: interior nodes hold named
// children, leaf nodes hold a typed scalar or array value. Paths use '/' as
// the separator, exactly like Conduit's fetch paths, so the layouts shown in
// the paper (Listings 1 and 2) translate one to one:
//
//	n := conduit.NewNode()
//	n.SetString("RP/task.000000/1698435412.6060030", "launch_start")
//	n.SetInt("PROC/cn4302/3824813742052238/Uptime", 49902)
//
// Nodes are not safe for concurrent mutation; callers that share a Node
// across goroutines must synchronize externally (the SOMA service does).
package conduit

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies what a Node holds.
type Kind uint8

// Node kinds. An Object node has named children; every other kind is a leaf.
const (
	KindEmpty Kind = iota
	KindObject
	KindInt
	KindFloat
	KindString
	KindBool
	KindIntArray
	KindFloatArray
)

var kindNames = [...]string{
	KindEmpty:      "empty",
	KindObject:     "object",
	KindInt:        "int64",
	KindFloat:      "float64",
	KindString:     "string",
	KindBool:       "bool",
	KindIntArray:   "int64_array",
	KindFloatArray: "float64_array",
}

// String returns the Conduit-style dtype name for k.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Node is one vertex of the hierarchy. The zero value is an empty node.
type Node struct {
	kind Kind

	i int64
	f float64
	s string
	b bool
	// ia and fa are stored by reference; callers that need isolation should
	// pass copies (Set*Array copies by default, see below).
	ia []int64
	fa []float64

	children map[string]*Node
	// order preserves insertion order of children, which matters for
	// deterministic serialization and for timeline-like layouts where the
	// child names are timestamps appended in order.
	order []string
	// cowBase, when non-nil, is the shared base layer of a copy-on-write
	// object node produced by MergeCOW: children then holds only this node's
	// delta (additions and overrides of the base), while order covers base
	// and delta names together in insertion order. Overlay nodes are
	// immutable by contract; the mutating entry points (ensureChild, Attach,
	// Remove) flatten them into plain nodes first.
	cowBase *Node
}

// NewNode returns an empty node ready for use.
func NewNode() *Node { return &Node{} }

// Kind reports what the node currently holds.
func (n *Node) Kind() Kind { return n.kind }

// IsLeaf reports whether the node holds a value rather than children.
func (n *Node) IsLeaf() bool { return n.kind != KindObject && n.kind != KindEmpty }

// IsEmpty reports whether the node holds nothing at all.
func (n *Node) IsEmpty() bool { return n.kind == KindEmpty }

// NumChildren returns the number of direct children.
func (n *Node) NumChildren() int { return len(n.order) }

// ChildNames returns the direct child names in insertion order. The returned
// slice is a copy.
func (n *Node) ChildNames() []string {
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// reset clears any held value but keeps children intact only when the node
// is already an object.
func (n *Node) setLeaf(k Kind) {
	n.kind = k
	n.children = nil
	n.order = nil
	n.cowBase = nil
}

// lookup resolves a direct child through the copy-on-write chain: the node's
// own delta first, then each base layer. Plain nodes resolve in one map
// probe; overlay chains are kept at most two layers deep by MergeCOW.
func (n *Node) lookup(name string) *Node {
	for cur := n; cur != nil; cur = cur.cowBase {
		if c, ok := cur.children[name]; ok {
			return c
		}
	}
	return nil
}

// flatten materializes a copy-on-write overlay node into a plain node,
// resolving the base chain into one owned children map. A no-op on plain
// nodes.
func (n *Node) flatten() {
	if n.cowBase == nil {
		return
	}
	m := make(map[string]*Node, len(n.order))
	for _, name := range n.order {
		m[name] = n.lookup(name)
	}
	n.children = m
	n.cowBase = nil
}

// Child returns the direct child with the given name, or nil.
func (n *Node) Child(name string) *Node {
	return n.lookup(name)
}

// ensureChild returns the direct child with the given name, creating it (and
// converting n into an object node) when absent.
func (n *Node) ensureChild(name string) *Node {
	if n.kind != KindObject {
		// Overwrite any leaf value: assigning children to a leaf converts it,
		// mirroring Conduit's behaviour of re-shaping on assignment.
		n.kind = KindObject
		n.i, n.f, n.s, n.b, n.ia, n.fa = 0, 0, "", false, nil, nil
	}
	n.flatten()
	if n.children == nil {
		n.children = make(map[string]*Node)
	}
	c, ok := n.children[name]
	if !ok {
		c = &Node{}
		n.children[name] = c
		n.order = append(n.order, name)
	}
	return c
}

// splitPath splits a '/'-separated path, dropping empty segments so that
// "a//b/" means "a/b".
func splitPath(path string) []string {
	raw := strings.Split(path, "/")
	segs := raw[:0]
	for _, s := range raw {
		if s != "" {
			segs = append(segs, s)
		}
	}
	return segs
}

// nextSeg iterates path segments without allocating: it returns the first
// non-empty segment and the remainder. seg is "" only when path is
// exhausted.
func nextSeg(path string) (seg, rest string) {
	for path != "" {
		i := strings.IndexByte(path, '/')
		if i < 0 {
			return path, ""
		}
		seg, path = path[:i], path[i+1:]
		if seg != "" {
			return seg, path
		}
	}
	return "", ""
}

// Fetch returns the node at path, creating intermediate object nodes as
// needed. Fetch with an empty path returns n itself.
func (n *Node) Fetch(path string) *Node {
	cur := n
	for seg, rest := nextSeg(path); seg != ""; seg, rest = nextSeg(rest) {
		cur = cur.ensureChild(seg)
	}
	return cur
}

// Get returns the node at path without creating anything; ok is false when
// any path segment is missing.
func (n *Node) Get(path string) (node *Node, ok bool) {
	cur := n
	for seg, rest := nextSeg(path); seg != ""; seg, rest = nextSeg(rest) {
		cur = cur.Child(seg)
		if cur == nil {
			return nil, false
		}
	}
	return cur, true
}

// Has reports whether a node exists at path.
func (n *Node) Has(path string) bool {
	_, ok := n.Get(path)
	return ok
}

// Remove deletes the child subtree at path. It reports whether anything was
// removed.
func (n *Node) Remove(path string) bool {
	segs := splitPath(path)
	if len(segs) == 0 {
		return false
	}
	parent := n
	for _, seg := range segs[:len(segs)-1] {
		parent = parent.Child(seg)
		if parent == nil {
			return false
		}
	}
	name := segs[len(segs)-1]
	parent.flatten()
	if parent.children == nil {
		return false
	}
	if _, ok := parent.children[name]; !ok {
		return false
	}
	delete(parent.children, name)
	for i, nm := range parent.order {
		if nm == name {
			parent.order = append(parent.order[:i], parent.order[i+1:]...)
			break
		}
	}
	return true
}

// SetInt stores an int64 leaf at path.
func (n *Node) SetInt(path string, v int64) {
	c := n.Fetch(path)
	c.setLeaf(KindInt)
	c.i = v
}

// SetFloat stores a float64 leaf at path.
func (n *Node) SetFloat(path string, v float64) {
	c := n.Fetch(path)
	c.setLeaf(KindFloat)
	c.f = v
}

// SetString stores a string leaf at path.
func (n *Node) SetString(path, v string) {
	c := n.Fetch(path)
	c.setLeaf(KindString)
	c.s = v
}

// SetBool stores a bool leaf at path.
func (n *Node) SetBool(path string, v bool) {
	c := n.Fetch(path)
	c.setLeaf(KindBool)
	c.b = v
}

// SetIntArray stores a copy of v as an int64 array leaf at path.
func (n *Node) SetIntArray(path string, v []int64) {
	c := n.Fetch(path)
	c.setLeaf(KindIntArray)
	c.ia = append([]int64(nil), v...)
}

// SetFloatArray stores a copy of v as a float64 array leaf at path.
func (n *Node) SetFloatArray(path string, v []float64) {
	c := n.Fetch(path)
	c.setLeaf(KindFloatArray)
	c.fa = append([]float64(nil), v...)
}

// Int returns the int64 at path. Float leaves are truncated. ok is false
// when the path is missing or holds a non-numeric leaf.
func (n *Node) Int(path string) (v int64, ok bool) {
	c, ok := n.Get(path)
	if !ok {
		return 0, false
	}
	switch c.kind {
	case KindInt:
		return c.i, true
	case KindFloat:
		return int64(c.f), true
	default:
		return 0, false
	}
}

// Float returns the float64 at path, converting int leaves.
func (n *Node) Float(path string) (v float64, ok bool) {
	c, ok := n.Get(path)
	if !ok {
		return 0, false
	}
	switch c.kind {
	case KindFloat:
		return c.f, true
	case KindInt:
		return float64(c.i), true
	default:
		return 0, false
	}
}

// String returns the string at path.
func (n *Node) StringVal(path string) (v string, ok bool) {
	c, ok := n.Get(path)
	if !ok || c.kind != KindString {
		return "", false
	}
	return c.s, true
}

// Bool returns the bool at path.
func (n *Node) Bool(path string) (v bool, ok bool) {
	c, ok := n.Get(path)
	if !ok || c.kind != KindBool {
		return false, false
	}
	return c.b, true
}

// IntArray returns the int64 array stored at path. The returned slice is the
// node's backing array; treat it as read-only.
func (n *Node) IntArray(path string) (v []int64, ok bool) {
	c, ok := n.Get(path)
	if !ok || c.kind != KindIntArray {
		return nil, false
	}
	return c.ia, true
}

// FloatArray returns the float64 array stored at path; read-only.
func (n *Node) FloatArray(path string) (v []float64, ok bool) {
	c, ok := n.Get(path)
	if !ok || c.kind != KindFloatArray {
		return nil, false
	}
	return c.fa, true
}

// Value returns the leaf value as an interface{} (nil for object/empty).
func (n *Node) Value() interface{} {
	switch n.kind {
	case KindInt:
		return n.i
	case KindFloat:
		return n.f
	case KindString:
		return n.s
	case KindBool:
		return n.b
	case KindIntArray:
		return n.ia
	case KindFloatArray:
		return n.fa
	default:
		return nil
	}
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	out := &Node{kind: n.kind, i: n.i, f: n.f, s: n.s, b: n.b}
	if n.ia != nil {
		out.ia = append([]int64(nil), n.ia...)
	}
	if n.fa != nil {
		out.fa = append([]float64(nil), n.fa...)
	}
	if n.children != nil || n.cowBase != nil {
		out.children = make(map[string]*Node, len(n.order))
		out.order = append([]string(nil), n.order...)
		for _, name := range n.order {
			out.children[name] = n.lookup(name).Clone()
		}
	}
	return out
}

// Merge copies every leaf of src into n, overwriting leaves that collide and
// creating intermediate objects as needed. Children unique to n survive.
// This is how the SOMA service combines updates arriving for the same
// namespace collection.
func (n *Node) Merge(src *Node) {
	if src == nil {
		return
	}
	if src.kind != KindObject {
		if src.kind != KindEmpty {
			n.setLeaf(src.kind)
			n.i, n.f, n.s, n.b = src.i, src.f, src.s, src.b
			n.ia = append([]int64(nil), src.ia...)
			n.fa = append([]float64(nil), src.fa...)
		}
		return
	}
	for _, name := range src.order {
		n.ensureChild(name).Merge(src.lookup(name))
	}
}

// Attach grafts child into n as the direct child with the given name,
// replacing any existing child, without copying — the zero-copy counterpart
// of Fetch(name).Merge(child). The child is shared by reference: the caller
// must not mutate it afterwards. SOMA's hot paths use it to wrap published
// trees in RPC envelopes and snapshot subtrees in responses.
func (n *Node) Attach(name string, child *Node) {
	if n.kind != KindObject {
		n.kind = KindObject
		n.i, n.f, n.s, n.b, n.ia, n.fa = 0, 0, "", false, nil, nil
	}
	n.flatten()
	if n.children == nil {
		n.children = make(map[string]*Node)
	}
	if _, ok := n.children[name]; !ok {
		n.order = append(n.order, name)
	}
	n.children[name] = child
}

// Overlay bounds for MergeCOW. A chain deeper than cowMaxChain is collapsed
// into a single delta over the flat base (so lookups stay a handful of map
// probes); a delta holding more than max(cowFlattenMin, total/cowFlattenFrac)
// entries is materialized into a flat map (so a delta never dwarfs the base
// it shadows).
const (
	cowFlattenMin  = 16
	cowFlattenFrac = 8
	cowMaxChain    = 8
)

// compact enforces the overlay bounds on a freshly built MergeCOW node; n is
// owned by the caller at this point, so rewriting it in place is safe.
func (n *Node) compact() {
	depth, deltaTotal := 0, 0
	base := n
	for base.cowBase != nil {
		depth++
		deltaTotal += len(base.children)
		base = base.cowBase
	}
	if deltaTotal > cowFlattenMin && deltaTotal*cowFlattenFrac > len(n.order) {
		n.flatten()
		return
	}
	if depth <= cowMaxChain {
		return
	}
	// Collapse the chain into one delta over the flat base: apply layers
	// oldest-first so newer entries shadow older ones.
	layers := make([]*Node, 0, depth)
	for cur := n; cur.cowBase != nil; cur = cur.cowBase {
		layers = append(layers, cur)
	}
	m := make(map[string]*Node, deltaTotal)
	for i := len(layers) - 1; i >= 0; i-- {
		for name, c := range layers[i].children {
			m[name] = c
		}
	}
	n.children = m
	n.cowBase = base
}

// MergeCOW returns a tree with the same contents dst would have after
// dst.Merge(src), without mutating dst: nodes along paths touched by src
// become thin overlays (a small delta map layered over dst's node via
// cowBase), everything untouched is shared by reference with dst, and
// subtrees unique to src are shared by reference with src. Both inputs must
// be treated as immutable afterwards. This is the copy-on-read primitive
// behind the SOMA service's merge snapshots: building generation N+1 costs
// O(paths touched by src), not O(fan-out of dst) — a 10k-child host node is
// never recopied just because one sample under it changed.
func MergeCOW(dst, src *Node) *Node {
	if src == nil || src.kind == KindEmpty {
		return dst
	}
	if dst == nil || dst.kind == KindEmpty {
		return src
	}
	if src.kind != KindObject || dst.kind != KindObject {
		// A leaf src overwrites whatever dst held; an object src merged onto
		// a leaf dst drops the leaf value (Merge's re-shape-on-assignment
		// semantics). Either way the result equals src, which can be shared.
		return src
	}
	if len(dst.order) == 0 {
		// Merging onto an empty object yields exactly src's contents.
		return src
	}
	// dst's order is shared with its capacity pinned: appending a new name
	// then reallocates instead of scribbling on the shared backing array.
	// The new layer's delta holds only the children src touches — dst's own
	// delta is layered behind it via the cowBase chain, never recopied.
	out := &Node{
		kind:     KindObject,
		order:    dst.order[:len(dst.order):len(dst.order)],
		cowBase:  dst,
		children: make(map[string]*Node, len(src.order)),
	}
	for _, name := range src.order {
		sc := src.lookup(name)
		if existing := dst.lookup(name); existing != nil {
			out.children[name] = MergeCOW(existing, sc)
		} else {
			out.children[name] = sc
			out.order = append(out.order, name)
		}
	}
	out.compact()
	return out
}

// Walk visits every leaf in depth-first insertion order, calling fn with the
// '/'-joined path from n and the leaf node. Returning false from fn stops
// the walk early.
func (n *Node) Walk(fn func(path string, leaf *Node) bool) {
	n.WalkBytes(func(p []byte, leaf *Node) bool { return fn(string(p), leaf) })
}

// WalkBytes is Walk without the per-leaf string allocation: path aliases an
// internal buffer that is overwritten as the traversal advances, so callers
// must copy it if they retain it beyond the callback.
func (n *Node) WalkBytes(fn func(path []byte, leaf *Node) bool) {
	if n.kind != KindObject {
		if n.kind != KindEmpty {
			fn(nil, n)
		}
		return
	}
	buf := make([]byte, 0, 64)
	n.walk(buf, fn)
}

func (n *Node) walk(buf []byte, fn func([]byte, *Node) bool) bool {
	for _, name := range n.order {
		mark := len(buf)
		if mark > 0 {
			buf = append(buf, '/')
		}
		buf = append(buf, name...)
		c := n.lookup(name)
		if c.kind == KindObject {
			if !c.walk(buf, fn) {
				return false
			}
		} else if !fn(buf, c) {
			return false
		}
		buf = buf[:mark]
	}
	return true
}

// Leaves returns the paths of every leaf under n in insertion order.
func (n *Node) Leaves() []string {
	var out []string
	n.Walk(func(path string, _ *Node) bool {
		out = append(out, path)
		return true
	})
	return out
}

// NumLeaves counts the leaves under n.
func (n *Node) NumLeaves() int {
	c := 0
	n.Walk(func(string, *Node) bool { c++; return true })
	return c
}

// Equal reports whether two subtrees hold the same structure and values.
// Child order is ignored: two objects are equal when they have the same
// name→subtree mapping.
func (n *Node) Equal(other *Node) bool {
	if n == nil || other == nil {
		return n == other
	}
	if n.kind != other.kind {
		return false
	}
	switch n.kind {
	case KindObject:
		if len(n.order) != len(other.order) {
			return false
		}
		for _, name := range n.order {
			oc := other.lookup(name)
			if oc == nil || !n.lookup(name).Equal(oc) {
				return false
			}
		}
		return true
	case KindInt:
		return n.i == other.i
	case KindFloat:
		return n.f == other.f
	case KindString:
		return n.s == other.s
	case KindBool:
		return n.b == other.b
	case KindIntArray:
		if len(n.ia) != len(other.ia) {
			return false
		}
		for i := range n.ia {
			if n.ia[i] != other.ia[i] {
				return false
			}
		}
		return true
	case KindFloatArray:
		if len(n.fa) != len(other.fa) {
			return false
		}
		for i := range n.fa {
			if n.fa[i] != other.fa[i] {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Diff returns the leaf paths at which n and other disagree (missing on
// either side or different values), sorted lexically. Useful in tests and in
// the service's deduplication path.
func (n *Node) Diff(other *Node) []string {
	seen := map[string]bool{}
	var out []string
	n.Walk(func(path string, leaf *Node) bool {
		o, ok := other.Get(path)
		if !ok || !leaf.Equal(o) {
			out = append(out, path)
		}
		seen[path] = true
		return true
	})
	other.Walk(func(path string, _ *Node) bool {
		if !seen[path] {
			out = append(out, path)
		}
		return true
	})
	sort.Strings(out)
	return out
}

// Format renders the subtree as an indented, YAML-like listing matching the
// style of the paper's Listings 1 and 2. Intended for logs and examples.
func (n *Node) Format() string {
	var sb strings.Builder
	n.format(&sb, 0, "")
	return sb.String()
}

func (n *Node) format(sb *strings.Builder, depth int, name string) {
	indent := strings.Repeat("  ", depth)
	if name != "" {
		sb.WriteString(indent)
		sb.WriteString(name)
		sb.WriteString(":")
	}
	switch n.kind {
	case KindObject:
		if name != "" {
			sb.WriteString("\n")
		}
		for _, cn := range n.order {
			n.lookup(cn).format(sb, depth+1, cn)
		}
	case KindEmpty:
		sb.WriteString(" ~\n")
	default:
		fmt.Fprintf(sb, " %v\n", n.Value())
	}
}
