package conduit

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzJSONRoundTrip feeds arbitrary bytes through the JSON boundary (the
// gateway's wire format) and cross-checks it against the binary codec.
// UnmarshalJSON must never panic; anything it accepts must survive
// JSON → tree → JSON → tree as a fixpoint AND agree with the binary codec
// (tree → EncodeBinaryStable → DecodeBinary → same tree).
//
// The fixpoint is asserted one canonicalization late: the first parse is
// allowed to normalize (JSON "2.0" becomes int 2, so n1's JSON need not
// equal the input), but after one round through MarshalJSON the
// representation must be stable.
func FuzzJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"a":1,"b":2.5,"c":"s"}`))
	f.Add([]byte(`{"job":{"ranks":[1,2,3],"name":"openfoam"},"t":12.75}`))
	f.Add([]byte(`{"neg":-9007199254740993,"big":1e308,"tiny":5e-324}`))
	f.Add([]byte(`{"2.0 becomes int":2.0,"stays float":2.5}`))
	// Hostile: deep nesting, duplicate keys, invalid UTF-8, truncation.
	f.Add([]byte(strings.Repeat(`{"d":`, 40) + "1" + strings.Repeat("}", 40)))
	f.Add([]byte(`{"k":1,"k":2,"k":"three"}`))
	f.Add([]byte("{\"\xff\xfe\":1}"))
	f.Add([]byte(`{"a":[1,2`))
	f.Add([]byte(`{"a":[1,"mixed"]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		n1 := NewNode()
		if err := n1.UnmarshalJSON(data); err != nil {
			return // rejection is fine; panics are not
		}
		j1, err := n1.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted input failed to marshal: %v\ninput: %q", err, data)
		}
		n2 := NewNode()
		if err := n2.UnmarshalJSON(j1); err != nil {
			t.Fatalf("own MarshalJSON output rejected: %v\njson: %s", err, j1)
		}
		j2, err := n2.MarshalJSON()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(j1, j2) {
			t.Fatalf("JSON not a fixpoint after one canonicalization:\n first: %s\nsecond: %s", j1, j2)
		}
		// Binary agreement: the tree the JSON boundary built must survive
		// the binary codec unchanged — the two wire formats describe the
		// same data model.
		enc := n2.EncodeBinaryStable()
		n3, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("JSON-built tree rejected by binary codec: %v\njson: %s", err, j1)
		}
		if !n2.Equal(n3) {
			t.Fatalf("binary round-trip changed the tree\njson: %s", j1)
		}
		j3, err := n3.MarshalJSON()
		if err != nil {
			t.Fatalf("binary round-tripped tree failed to marshal: %v", err)
		}
		if !bytes.Equal(j2, j3) {
			t.Fatalf("codecs disagree:\n  json: %s\nbinary: %s", j2, j3)
		}
	})
}

// TestJSONHostileInputs pins the behavior (accept-and-normalize or reject,
// but never panic) for the classic hostile inputs one by one, so a change
// in any verdict is visible in review rather than buried in a corpus.
func TestJSONHostileInputs(t *testing.T) {
	cases := []struct {
		name   string
		input  string
		accept bool
	}{
		{"empty object", `{}`, true},
		{"deep nesting 100", strings.Repeat(`{"d":`, 100) + "1" + strings.Repeat("}", 100), true},
		{"huge positive exponent", `{"v":1e308}`, true},
		{"overflow to infinity", `{"v":1e309}`, false},
		{"integer beyond int64", `{"v":92233720368547758089}`, true}, // falls back to float64
		{"negative zero", `{"v":-0.0}`, true},
		{"duplicate keys", `{"k":1,"k":2}`, true}, // last one wins, like encoding/json
		{"invalid utf8 in key", "{\"\xff\":1}", true},
		{"invalid utf8 in value", "{\"k\":\"\xc3\x28\"}", true},
		{"truncated object", `{"a":1`, false},
		{"truncated array", `{"a":[1,2`, false},
		{"trailing garbage", `{"a":1}}}`, false},
		{"trailing second document", `{"a":1} {"b":2}`, false},
		{"mixed-type array", `{"a":[1,"two"]}`, false},
		{"nested non-numeric array", `{"a":[[1],[2]]}`, false},
		// Leaf roots are legitimate: a Node can itself be a scalar/array
		// leaf, so the JSON boundary admits the same shapes the tree can hold.
		{"bare scalar", `42`, true},
		{"bare null", `null`, true},
		{"bare array", `[1,2]`, true},
		{"leading whitespace", "  \t\n{\"a\":1}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			n := NewNode()
			err := n.UnmarshalJSON([]byte(tc.input))
			if tc.accept && err != nil {
				t.Fatalf("want accept, got error: %v", err)
			}
			if !tc.accept && err == nil {
				out, _ := n.MarshalJSON()
				t.Fatalf("want reject, got tree: %s", out)
			}
			if err != nil {
				return
			}
			// Whatever was accepted must round-trip through both codecs.
			j1, err := n.MarshalJSON()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			back := NewNode()
			if err := back.UnmarshalJSON(j1); err != nil {
				t.Fatalf("re-unmarshal: %v", err)
			}
			dec, err := DecodeBinary(back.EncodeBinaryStable())
			if err != nil {
				t.Fatalf("binary codec: %v", err)
			}
			if !back.Equal(dec) {
				t.Fatalf("binary round-trip changed tree for %s", j1)
			}
		})
	}
}
