package conduit_test

import (
	"fmt"

	"github.com/hpcobs/gosoma/internal/conduit"
)

// The hierarchical layouts of the paper's Listings 1 and 2 translate
// directly to paths.
func ExampleNode() {
	n := conduit.NewNode()
	n.SetString("RP/task.000000/1698435412.6060030", "launch_start")
	n.SetInt("PROC/cn4302/3824813742052238/Uptime", 49902)

	event, _ := n.StringVal("RP/task.000000/1698435412.6060030")
	uptime, _ := n.Int("PROC/cn4302/3824813742052238/Uptime")
	fmt.Println(event, uptime)
	// Output: launch_start 49902
}

func ExampleNode_Merge() {
	service := conduit.NewNode()
	update1 := conduit.NewNode()
	update1.SetFloat("PROC/cn0001/10.0/CPU Util", 25)
	update2 := conduit.NewNode()
	update2.SetFloat("PROC/cn0001/20.0/CPU Util", 75)

	service.Merge(update1)
	service.Merge(update2)
	fmt.Println(service.NumLeaves(), "samples merged")
	// Output: 2 samples merged
}

func ExampleNode_Select() {
	n := conduit.NewNode()
	n.SetFloat("PROC/cn0001/10.0/CPU Util", 20)
	n.SetFloat("PROC/cn0002/10.0/CPU Util", 60)

	for _, v := range n.SelectFloats("PROC/*/*/CPU Util") {
		fmt.Println(v)
	}
	// Output:
	// 20
	// 60
}

func ExampleDecodeBinary() {
	n := conduit.NewNode()
	n.SetString("ns", "workflow")
	n.SetIntArray("data/stat/cpu", []int64{10749, 865, 685})

	wire := n.EncodeBinary() // what goes over RPC
	back, err := conduit.DecodeBinary(wire)
	if err != nil {
		panic(err)
	}
	ns, _ := back.StringVal("ns")
	fmt.Println(ns, back.Equal(n))
	// Output: workflow true
}
