// Package zmq provides the component-coordination messaging layer that the
// RADICAL-Pilot analog uses, modelled on how RP itself uses ZeroMQ: every
// component gets its inputs from a queue and pushes outputs to another
// component's queue, and state notifications fan out over pub/sub.
//
// Two socket patterns are implemented:
//
//   - Push/Pull: a multi-producer, multi-consumer work queue. Messages are
//     delivered to exactly one puller.
//   - Pub/Sub: topic-prefixed fan-out. Every subscriber whose topic prefix
//     matches receives a copy; slow subscribers drop (ZeroMQ's high-water
//     mark behaviour) rather than stall the publisher.
//
// Queues are in-process (the pilot Agent components run in one process in
// this reproduction — as they do in RP's Agent). The tcp deployment path for
// cross-process coordination is covered by internal/mercury.
package zmq

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Process-wide pub/sub telemetry; per-queue depth gauges are created per
// queue name in NewQueue. Per-subscriber drop counts stay out of the
// registry (their cardinality is unbounded) and are surfaced via
// PubSub.Stats and the PubSub.Close return value instead.
var (
	telPubPublished = telemetry.Default().Counter("zmq.pubsub.published")
	telPubDelivered = telemetry.Default().Counter("zmq.pubsub.delivered")
	telPubDropped   = telemetry.Default().Counter("zmq.pubsub.dropped")
)

// ErrClosed is returned by operations on a closed socket.
var ErrClosed = errors.New("zmq: socket closed")

// DefaultHighWater is the per-subscriber buffered message count before the
// publisher starts dropping for that subscriber.
const DefaultHighWater = 1024

// Message is an opaque payload with an optional topic (pub/sub only).
type Message struct {
	Topic   string
	Payload interface{}
}

// ---------------------------------------------------------------------------
// Push/Pull

// Queue is a named push/pull work queue.
type Queue struct {
	name  string
	mu    sync.Mutex
	cond  *sync.Cond
	buf   []interface{}
	done  bool
	depth *telemetry.Gauge // queue backpressure, by queue name
}

// NewQueue creates an unbounded push/pull queue.
func NewQueue(name string) *Queue {
	q := &Queue{name: name, depth: telemetry.Default().Gauge("zmq.queue." + name + ".depth")}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Name returns the queue name.
func (q *Queue) Name() string { return q.name }

// Push enqueues a message; it never blocks. Push on a closed queue returns
// ErrClosed.
func (q *Queue) Push(v interface{}) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return ErrClosed
	}
	q.buf = append(q.buf, v)
	q.depth.Set(int64(len(q.buf)))
	q.cond.Signal()
	return nil
}

// Pull dequeues the next message, blocking until one is available or the
// queue is closed. ok is false only when the queue is closed and drained.
func (q *Queue) Pull() (v interface{}, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.done {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return nil, false
	}
	v = q.buf[0]
	q.buf = q.buf[1:]
	q.depth.Set(int64(len(q.buf)))
	return v, true
}

// TryPull dequeues without blocking.
func (q *Queue) TryPull() (v interface{}, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return nil, false
	}
	v = q.buf[0]
	q.buf = q.buf[1:]
	q.depth.Set(int64(len(q.buf)))
	return v, true
}

// Len reports the queued message count.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// Close marks the queue closed; pullers drain remaining messages and then
// observe ok == false.
func (q *Queue) Close() {
	q.mu.Lock()
	q.done = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Pub/Sub

// PubSub is a topic-prefix fan-out bus.
type PubSub struct {
	mu        sync.Mutex
	subs      map[int]*subscription
	nextID    int
	highWater int
	closed    bool
	dropped   int64
	// nsubs mirrors len(subs) atomically so publishers can skip payload
	// construction without taking the bus lock (see Subscribers).
	nsubs atomic.Int64
}

type subscription struct {
	prefix  string
	ch      chan Message
	dropped int64 // messages discarded for this subscriber (guarded by PubSub.mu)
}

// SubStats describes one subscriber's standing at snapshot time: its topic
// prefix, how many messages sit unconsumed in its buffer, and how many were
// dropped because the buffer hit the high-water mark.
type SubStats struct {
	Prefix  string
	Queued  int
	Dropped int64
}

// NewPubSub creates a bus with the default high-water mark.
func NewPubSub() *PubSub { return NewPubSubHW(DefaultHighWater) }

// NewPubSubHW creates a bus whose subscribers buffer up to hw messages.
func NewPubSubHW(hw int) *PubSub {
	if hw < 1 {
		hw = 1
	}
	return &PubSub{subs: map[int]*subscription{}, highWater: hw}
}

// Subscribe registers interest in every topic beginning with prefix (""
// subscribes to everything). cancel removes the subscription and closes the
// channel.
func (b *PubSub) Subscribe(prefix string) (ch <-chan Message, cancel func()) {
	ch, cancel, _ = b.SubscribeWithStats(prefix)
	return ch, cancel
}

// SubscribeWithStats is Subscribe plus a stats accessor for this one
// subscription — the per-subscriber drop accounting of Stats, addressable
// without scanning the whole bus. Remote subscription serving reports these
// counts back to the network subscriber.
func (b *PubSub) SubscribeWithStats(prefix string) (ch <-chan Message, cancel func(), stats func() SubStats) {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.nextID
	b.nextID++
	sub := &subscription{prefix: prefix, ch: make(chan Message, b.highWater)}
	stats = func() SubStats {
		b.mu.Lock()
		defer b.mu.Unlock()
		return SubStats{Prefix: sub.prefix, Queued: len(sub.ch), Dropped: sub.dropped}
	}
	if b.closed {
		close(sub.ch)
		return sub.ch, func() {}, stats
	}
	b.subs[id] = sub
	b.nsubs.Store(int64(len(b.subs)))
	return sub.ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if s, ok := b.subs[id]; ok {
			delete(b.subs, id)
			b.nsubs.Store(int64(len(b.subs)))
			close(s.ch)
		}
	}, stats
}

// Subscribers reports the current subscription count without locking the
// bus; publishers use it to skip message construction entirely when nobody
// is listening.
func (b *PubSub) Subscribers() int { return int(b.nsubs.Load()) }

// Publish fans msg out to every matching subscriber. Full subscribers drop
// the message (counted in Dropped) instead of blocking the publisher.
func (b *PubSub) Publish(topic string, payload interface{}) error {
	msg := Message{Topic: topic, Payload: payload}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	telPubPublished.Inc()
	for _, sub := range b.subs {
		if !strings.HasPrefix(topic, sub.prefix) {
			continue
		}
		select {
		case sub.ch <- msg:
			telPubDelivered.Inc()
		default:
			sub.dropped++
			b.dropped++
			telPubDropped.Inc()
		}
	}
	return nil
}

// Dropped reports how many messages were discarded due to full subscribers.
func (b *PubSub) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Stats reports per-subscriber queue depth and drop counts for the live
// subscriptions. Ordering is unspecified.
func (b *PubSub) Stats() []SubStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.statsLocked()
}

func (b *PubSub) statsLocked() []SubStats {
	out := make([]SubStats, 0, len(b.subs))
	for _, sub := range b.subs {
		out = append(out, SubStats{Prefix: sub.prefix, Queued: len(sub.ch), Dropped: sub.dropped})
	}
	return out
}

// Close shuts the bus down and closes all subscriber channels. It returns the
// final per-subscriber stats so callers can log which subscribers fell behind
// (Queued counts messages still in flight at close; subscribers may yet drain
// them before seeing the channel close).
func (b *PubSub) Close() []SubStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	final := b.statsLocked()
	b.closed = true
	for id, sub := range b.subs {
		close(sub.ch)
		delete(b.subs, id)
	}
	b.nsubs.Store(0)
	return final
}
