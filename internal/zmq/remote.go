package zmq

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/mercury"
)

// Remote queue access. RP's subsystems "can execute locally or remotely,
// communicating over TCP/IP and enabling multiple deployment scenarios"
// (paper §2.1); this file provides that deployment path for queues: a Queue
// served over a mercury engine, and a RemoteQueue client mirroring the
// local API. Payloads must be JSON-serializable (the pilot's task
// descriptions and control messages are).

// RPC names used by queue serving.
const (
	rpcQueuePush = "zmq.queue.push"
	rpcQueuePull = "zmq.queue.pull"
	rpcQueueLen  = "zmq.queue.len"
)

type queueWire struct {
	Queue   string          `json:"queue"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

type queuePullResp struct {
	OK      bool            `json:"ok"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Serve exposes queues (and pub/sub buses, see remotepubsub.go) by name on
// a mercury engine. Multiple queues can be served by one engine; remote
// clients address them by queue name.
type Server struct {
	engine *mercury.Engine
	queues map[string]*Queue

	busMu sync.Mutex
	buses map[string]*servedBus
}

// NewServer registers the RPC handlers on the engine and returns a server
// to which queues are attached.
func NewServer(engine *mercury.Engine) *Server {
	s := &Server{engine: engine, queues: map[string]*Queue{}}
	engine.Register(rpcQueuePush, s.handlePush)
	engine.Register(rpcQueuePull, s.handlePull)
	engine.Register(rpcQueueLen, s.handleLen)
	return s
}

// Attach makes q reachable by remote clients under its name.
func (s *Server) Attach(q *Queue) { s.queues[q.Name()] = q }

func (s *Server) queue(raw []byte) (*Queue, queueWire, error) {
	var w queueWire
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, w, err
	}
	q, ok := s.queues[w.Queue]
	if !ok {
		return nil, w, fmt.Errorf("zmq: no queue named %q", w.Queue)
	}
	return q, w, nil
}

func (s *Server) handlePush(_ context.Context, raw []byte) ([]byte, error) {
	q, w, err := s.queue(raw)
	if err != nil {
		return nil, err
	}
	if err := q.Push(w.Payload); err != nil {
		return nil, err
	}
	return nil, nil
}

func (s *Server) handlePull(_ context.Context, raw []byte) ([]byte, error) {
	q, _, err := s.queue(raw)
	if err != nil {
		return nil, err
	}
	v, ok := q.TryPull()
	resp := queuePullResp{OK: ok}
	if ok {
		switch payload := v.(type) {
		case json.RawMessage:
			resp.Payload = payload
		case []byte:
			resp.Payload = payload
		default:
			data, err := json.Marshal(payload)
			if err != nil {
				return nil, err
			}
			resp.Payload = data
		}
	}
	return json.Marshal(resp)
}

func (s *Server) handleLen(_ context.Context, raw []byte) ([]byte, error) {
	q, _, err := s.queue(raw)
	if err != nil {
		return nil, err
	}
	return json.Marshal(q.Len())
}

// RemoteQueue is the client side of a served queue. Pulls are non-blocking
// polls (remote consumers poll at their own cadence; blocking semantics
// over a network hop would couple failure domains).
type RemoteQueue struct {
	name string
	ep   *mercury.Endpoint
}

// Dial connects to a queue served at addr under the given name, with a
// resilient default policy: bounded connects and a couple of backed-off
// retries. Only zmq.queue.len is re-sent once a request may have reached the
// server — a replayed push would duplicate a task description, a replayed
// pull would lose one — so push/pull retries cover the connect stage only.
func Dial(addr, name string) (*RemoteQueue, error) {
	return DialPolicy(addr, name, &mercury.CallPolicy{
		ConnectTimeout: 5 * time.Second,
		MaxRetries:     2,
		Backoff:        mercury.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
		Idempotent:     mercury.IdempotentSet(rpcQueueLen),
	})
}

// DialPolicy is Dial with an explicit mercury call policy (nil = default
// policy: bounded connects, no retries).
func DialPolicy(addr, name string, p *mercury.CallPolicy) (*RemoteQueue, error) {
	ep, err := mercury.LookupPolicy(addr, p)
	if err != nil {
		return nil, err
	}
	return &RemoteQueue{name: name, ep: ep}, nil
}

// Name returns the remote queue's name.
func (rq *RemoteQueue) Name() string { return rq.name }

// Push marshals v to JSON and enqueues it remotely.
func (rq *RemoteQueue) Push(v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := json.Marshal(queueWire{Queue: rq.name, Payload: payload})
	if err != nil {
		return err
	}
	_, err = rq.ep.Call(context.Background(), rpcQueuePush, req)
	return err
}

// TryPull dequeues one message into out (a pointer). ok reports whether a
// message was available.
func (rq *RemoteQueue) TryPull(out interface{}) (ok bool, err error) {
	req, err := json.Marshal(queueWire{Queue: rq.name})
	if err != nil {
		return false, err
	}
	raw, err := rq.ep.Call(context.Background(), rpcQueuePull, req)
	if err != nil {
		return false, err
	}
	var resp queuePullResp
	if err := json.Unmarshal(raw, &resp); err != nil {
		return false, err
	}
	if !resp.OK {
		return false, nil
	}
	if out != nil {
		if err := json.Unmarshal(resp.Payload, out); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Len returns the remote queue's current depth.
func (rq *RemoteQueue) Len() (int, error) {
	req, err := json.Marshal(queueWire{Queue: rq.name})
	if err != nil {
		return 0, err
	}
	raw, err := rq.ep.Call(context.Background(), rpcQueueLen, req)
	if err != nil {
		return 0, err
	}
	var n int
	err = json.Unmarshal(raw, &n)
	return n, err
}

// Close releases the connection.
func (rq *RemoteQueue) Close() error { return rq.ep.Close() }
