package zmq

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/hpcobs/gosoma/internal/mercury"
	"github.com/hpcobs/gosoma/internal/telemetry"
)

// Remote pub/sub access: the fan-out half of the remote deployment path, the
// way remote.go covers queues. A PubSub attached to a Server becomes
// reachable over mercury: remote clients register a topic-prefix
// subscription, then long-poll for batches of matching messages. Delivery
// semantics are exactly the local bus's — per-subscriber buffers with
// high-water-mark dropping — and each receive reports the subscription's
// cumulative drop count (from PubSub's per-subscriber accounting), so a slow
// network consumer can see what it lost.
//
// The receive RPC blocks server-side until a message arrives, the poll
// window elapses, or the engine shuts down; it is registered through
// mercury's blocking-handler path so a waiting subscriber never stalls
// engine Close. Subscriptions are leased: a subscriber that stops calling
// recv (crashed, disconnected) is dropped after ExpireAfter of silence and
// its bus subscription is cancelled, reclaiming its buffer.

// RPC names used by pub/sub serving.
const (
	rpcPubSubSub   = "zmq.pubsub.sub"
	rpcPubSubRecv  = "zmq.pubsub.recv"
	rpcPubSubUnsub = "zmq.pubsub.unsub"
	rpcPubSubStats = "zmq.pubsub.stats"
)

// DefaultSubExpiry is how long a remote subscription survives without a
// receive call before the server reclaims it.
const DefaultSubExpiry = 60 * time.Second

// Remote-subscription telemetry: the gauge tracks live leases across all
// served buses in the process; expiries count reclaimed dead subscribers.
var (
	telRemoteSubs    = telemetry.Default().Gauge("zmq.pubsub.remote.subscribers")
	telRemoteExpired = telemetry.Default().Counter("zmq.pubsub.remote.expired")
)

type pubsubWire struct {
	Bus    string `json:"bus"`
	Prefix string `json:"prefix,omitempty"`
	ID     uint64 `json:"id,omitempty"`
	Max    int    `json:"max,omitempty"`
	WaitMS int64  `json:"wait_ms,omitempty"`
}

type pubsubSubResp struct {
	ID uint64 `json:"id"`
}

type wireMessage struct {
	Topic   string          `json:"topic"`
	Payload json.RawMessage `json:"payload"`
}

type pubsubRecvResp struct {
	Msgs []wireMessage `json:"msgs,omitempty"`
	// Dropped is the subscription's cumulative high-water-mark drop count.
	Dropped int64 `json:"dropped"`
	// Closed reports that the bus shut down; no further messages will come.
	Closed bool `json:"closed,omitempty"`
}

// servedBus is one PubSub exposed to remote subscribers.
type servedBus struct {
	bus    *PubSub
	expiry time.Duration

	mu     sync.Mutex
	subs   map[uint64]*remoteSubState
	nextID uint64
}

// remoteSubState is the server side of one remote subscription: a local bus
// subscription plus lease bookkeeping.
type remoteSubState struct {
	ch       <-chan Message
	cancel   func()
	stats    func() SubStats
	lastSeen time.Time
	// inRecv counts receive calls currently parked on this subscription, so
	// the sweeper never expires a lease that is actively being polled.
	inRecv int
}

// AttachBus makes b reachable by remote subscribers under the given name,
// with the default lease expiry. The pub/sub RPC handlers are registered on
// first attach.
func (s *Server) AttachBus(name string, b *PubSub) {
	s.AttachBusExpiry(name, b, DefaultSubExpiry)
}

// AttachBusExpiry is AttachBus with an explicit lease duration: remote
// subscriptions idle (no receive call) for longer than expiry are dropped.
func (s *Server) AttachBusExpiry(name string, b *PubSub, expiry time.Duration) {
	if expiry <= 0 {
		expiry = DefaultSubExpiry
	}
	s.busMu.Lock()
	defer s.busMu.Unlock()
	if s.buses == nil {
		s.buses = map[string]*servedBus{}
		s.engine.Register(rpcPubSubSub, s.handleSub)
		s.engine.RegisterBlocking(rpcPubSubRecv, s.handleRecv)
		s.engine.Register(rpcPubSubUnsub, s.handleUnsub)
		s.engine.Register(rpcPubSubStats, s.handleSubStats)
	}
	s.buses[name] = &servedBus{bus: b, expiry: expiry, subs: map[uint64]*remoteSubState{}}
}

func (s *Server) servedBus(raw []byte) (*servedBus, pubsubWire, error) {
	var w pubsubWire
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, w, err
	}
	s.busMu.Lock()
	sb, ok := s.buses[w.Bus]
	s.busMu.Unlock()
	if !ok {
		return nil, w, fmt.Errorf("zmq: no bus named %q", w.Bus)
	}
	return sb, w, nil
}

// sweep reclaims leases idle beyond the expiry. Called from every pub/sub
// handler, so dead subscribers are collected as a side effect of live
// traffic (no janitor goroutine to leak).
func (sb *servedBus) sweep(now time.Time) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for id, st := range sb.subs {
		if st.inRecv == 0 && now.Sub(st.lastSeen) > sb.expiry {
			st.cancel()
			delete(sb.subs, id)
			telRemoteSubs.Dec()
			telRemoteExpired.Inc()
		}
	}
}

func (s *Server) handleSub(_ context.Context, raw []byte) ([]byte, error) {
	sb, w, err := s.servedBus(raw)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	sb.sweep(now)
	ch, cancel, stats := sb.bus.SubscribeWithStats(w.Prefix)
	sb.mu.Lock()
	sb.nextID++
	id := sb.nextID
	sb.subs[id] = &remoteSubState{ch: ch, cancel: cancel, stats: stats, lastSeen: now}
	sb.mu.Unlock()
	telRemoteSubs.Inc()
	return json.Marshal(pubsubSubResp{ID: id})
}

func (s *Server) handleUnsub(_ context.Context, raw []byte) ([]byte, error) {
	sb, w, err := s.servedBus(raw)
	if err != nil {
		return nil, err
	}
	sb.mu.Lock()
	st, ok := sb.subs[w.ID]
	delete(sb.subs, w.ID)
	sb.mu.Unlock()
	if ok {
		st.cancel()
		telRemoteSubs.Dec()
	}
	return nil, nil
}

func (s *Server) handleSubStats(_ context.Context, raw []byte) ([]byte, error) {
	sb, _, err := s.servedBus(raw)
	if err != nil {
		return nil, err
	}
	sb.sweep(time.Now())
	return json.Marshal(sb.bus.Stats())
}

// handleRecv is the long-poll receive: it parks until a message is buffered
// for the subscription, the wait window elapses, or the engine closes (the
// blocking-handler context), then drains up to Max messages.
func (s *Server) handleRecv(ctx context.Context, raw []byte) ([]byte, error) {
	sb, w, err := s.servedBus(raw)
	if err != nil {
		return nil, err
	}
	// Refresh the calling subscription's own lease before sweeping: a
	// subscriber whose gap between recv calls just exceeded the expiry must
	// not reap itself on the way in.
	now := time.Now()
	sb.mu.Lock()
	st, ok := sb.subs[w.ID]
	if ok {
		st.lastSeen = now
		st.inRecv++
	}
	sb.mu.Unlock()
	sb.sweep(now)
	if !ok {
		return nil, fmt.Errorf("zmq: no subscription %d on bus %q", w.ID, w.Bus)
	}
	defer func() {
		sb.mu.Lock()
		st.inRecv--
		st.lastSeen = time.Now()
		sb.mu.Unlock()
	}()

	maxMsgs := w.Max
	if maxMsgs < 1 {
		maxMsgs = 64
	}
	wait := time.Duration(w.WaitMS) * time.Millisecond
	if wait <= 0 {
		wait = time.Millisecond
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()

	var resp pubsubRecvResp
	appendMsg := func(m Message) error {
		payload, err := json.Marshal(m.Payload)
		if err != nil {
			return err
		}
		resp.Msgs = append(resp.Msgs, wireMessage{Topic: m.Topic, Payload: payload})
		return nil
	}

	// Park for the first message, then drain whatever else is buffered.
	select {
	case m, open := <-st.ch:
		if !open {
			resp.Closed = true
		} else if err := appendMsg(m); err != nil {
			return nil, err
		}
	case <-timer.C:
	case <-ctx.Done():
	}
drain:
	for len(resp.Msgs) < maxMsgs && !resp.Closed {
		select {
		case m, open := <-st.ch:
			if !open {
				resp.Closed = true
			} else if err := appendMsg(m); err != nil {
				return nil, err
			}
		default:
			break drain
		}
	}
	resp.Dropped = st.stats().Dropped
	return json.Marshal(&resp)
}

// ---------------------------------------------------------------------------
// RemoteSub: the client side of a served bus.

// RemoteSub is a remote subscription to a served PubSub. Receive with Recv;
// a RemoteSub is intended for a single consumer (concurrent Recv calls on
// one RemoteSub interleave messages arbitrarily).
type RemoteSub struct {
	ep    *mercury.Endpoint
	ownEP bool
	bus   string
	id    uint64
}

// DialSub connects to the bus served at addr under busName and registers a
// subscription for topics beginning with prefix. The connection is owned by
// the RemoteSub and released by Close.
func DialSub(addr, busName, prefix string) (*RemoteSub, error) {
	ep, err := mercury.Lookup(addr)
	if err != nil {
		return nil, err
	}
	rs, err := SubscribeRemote(ep, busName, prefix)
	if err != nil {
		ep.Close()
		return nil, err
	}
	rs.ownEP = true
	return rs, nil
}

// SubscribeRemote registers a subscription over an existing endpoint (shared
// with other RPC traffic; mercury multiplexes). Close does not release a
// shared endpoint.
func SubscribeRemote(ep *mercury.Endpoint, busName, prefix string) (*RemoteSub, error) {
	req, err := json.Marshal(pubsubWire{Bus: busName, Prefix: prefix})
	if err != nil {
		return nil, err
	}
	raw, err := ep.Call(context.Background(), rpcPubSubSub, req)
	if err != nil {
		return nil, err
	}
	var resp pubsubSubResp
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	return &RemoteSub{ep: ep, bus: busName, id: resp.ID}, nil
}

// Recv long-polls for the next batch of messages: it returns as soon as at
// least one message is available (up to max per call), or with an empty
// batch after wait. dropped is the subscription's cumulative server-side
// drop count. Recv returns ErrClosed once the served bus has shut down.
// Message payloads are json.RawMessage.
func (rs *RemoteSub) Recv(ctx context.Context, max int, wait time.Duration) (msgs []Message, dropped int64, err error) {
	req, err := json.Marshal(pubsubWire{Bus: rs.bus, ID: rs.id, Max: max, WaitMS: wait.Milliseconds()})
	if err != nil {
		return nil, 0, err
	}
	raw, err := rs.ep.Call(ctx, rpcPubSubRecv, req)
	if err != nil {
		return nil, 0, err
	}
	var resp pubsubRecvResp
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, 0, err
	}
	for _, m := range resp.Msgs {
		msgs = append(msgs, Message{Topic: m.Topic, Payload: m.Payload})
	}
	if resp.Closed && len(msgs) == 0 {
		return nil, resp.Dropped, ErrClosed
	}
	return msgs, resp.Dropped, nil
}

// Unsubscribe releases the server-side subscription but keeps the endpoint.
func (rs *RemoteSub) Unsubscribe() error {
	req, err := json.Marshal(pubsubWire{Bus: rs.bus, ID: rs.id})
	if err != nil {
		return err
	}
	_, err = rs.ep.Call(context.Background(), rpcPubSubUnsub, req)
	return err
}

// Close unsubscribes and, when the connection is owned (DialSub), releases
// it.
func (rs *RemoteSub) Close() error {
	err := rs.Unsubscribe()
	if rs.ownEP {
		if cerr := rs.ep.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
