package zmq

import (
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/mercury"
)

// servedBusSetup starts an engine serving bus under the given name and
// returns the concrete address.
func servedBusSetup(t *testing.T, scheme, name string, bus *PubSub, expiry time.Duration) string {
	t.Helper()
	engine := mercury.NewEngine()
	t.Cleanup(func() { engine.Close() })
	srv := NewServer(engine)
	if expiry > 0 {
		srv.AttachBusExpiry(name, bus, expiry)
	} else {
		srv.AttachBus(name, bus)
	}
	addr, err := engine.Listen(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return addr
}

func TestRemotePubSubDeliveryTCP(t *testing.T) {
	bus := NewPubSub()
	defer bus.Close()
	addr := servedBusSetup(t, "tcp://127.0.0.1:0", "updates", bus, 0)

	rs, err := DialSub(addr, "updates", "ns/")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Prefix filtering happens server-side: only ns/* topics arrive.
	bus.Publish("ns/hardware", map[string]int{"v": 1})
	bus.Publish("alerts/hardware", map[string]int{"v": 2})
	bus.Publish("ns/workflow", map[string]int{"v": 3})

	var got []Message
	deadline := time.Now().Add(2 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		msgs, _, err := rs.Recv(context.Background(), 16, 200*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, msgs...)
	}
	if len(got) != 2 {
		t.Fatalf("received %d messages, want 2 (ns/ only)", len(got))
	}
	if got[0].Topic != "ns/hardware" || got[1].Topic != "ns/workflow" {
		t.Fatalf("topics = %q, %q", got[0].Topic, got[1].Topic)
	}
	var payload struct {
		V int `json:"v"`
	}
	if err := json.Unmarshal(got[0].Payload.(json.RawMessage), &payload); err != nil || payload.V != 1 {
		t.Fatalf("payload = %+v, %v", payload, err)
	}
}

func TestRemotePubSubPushLatency(t *testing.T) {
	// Push semantics: a parked Recv returns as soon as a publish lands, well
	// before its wait window elapses.
	bus := NewPubSub()
	defer bus.Close()
	addr := servedBusSetup(t, "inproc://pubsub-push", "updates", bus, 0)
	rs, err := DialSub(addr, "updates", "")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	go func() {
		time.Sleep(50 * time.Millisecond)
		bus.Publish("ns/hardware", 42)
	}()
	start := time.Now()
	msgs, _, err := rs.Recv(context.Background(), 1, 10*time.Second)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("recv = %d msgs, %v", len(msgs), err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("recv took %s; long-poll did not wake on publish", elapsed)
	}
}

func TestRemoteSubHighWaterDrops(t *testing.T) {
	// A slow remote consumer loses messages to the high-water mark, and the
	// reported drop count plus delivered count stays consistent with what was
	// published.
	const hw, published = 4, 20
	bus := NewPubSubHW(hw)
	defer bus.Close()
	addr := servedBusSetup(t, "inproc://pubsub-drops", "updates", bus, 0)
	rs, err := DialSub(addr, "updates", "ns/")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	for i := 0; i < published; i++ {
		bus.Publish("ns/hardware", i)
	}

	received := 0
	var dropped int64
	for {
		msgs, d, err := rs.Recv(context.Background(), 64, 50*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		dropped = d
		if len(msgs) == 0 {
			break
		}
		received += len(msgs)
	}
	if received != hw {
		t.Fatalf("received %d, want the high-water %d", received, hw)
	}
	if dropped != published-hw {
		t.Fatalf("dropped = %d, want %d", dropped, published-hw)
	}
	// The server-side bus accounting agrees with what the client saw.
	if bus.Dropped() != dropped {
		t.Fatalf("bus.Dropped() = %d, client saw %d", bus.Dropped(), dropped)
	}
}

func TestRemoteSubDisconnectReconnect(t *testing.T) {
	// A subscriber that goes away (Close) is removed from the bus; a new dial
	// re-establishes delivery with fresh drop accounting.
	bus := NewPubSub()
	defer bus.Close()
	addr := servedBusSetup(t, "tcp://127.0.0.1:0", "updates", bus, 0)

	rs1, err := DialSub(addr, "updates", "ns/")
	if err != nil {
		t.Fatal(err)
	}
	if n := bus.Subscribers(); n != 1 {
		t.Fatalf("subscribers after dial = %d", n)
	}
	if err := rs1.Close(); err != nil {
		t.Fatal(err)
	}
	if n := bus.Subscribers(); n != 0 {
		t.Fatalf("subscribers after close = %d; server kept a dead subscriber", n)
	}
	// Receiving on the closed subscription's ID fails rather than hanging.
	if _, _, err := rs1.Recv(context.Background(), 1, 10*time.Millisecond); err == nil {
		t.Fatal("recv on unsubscribed ID succeeded")
	}

	rs2, err := DialSub(addr, "updates", "ns/")
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	bus.Publish("ns/hardware", 7)
	msgs, dropped, err := rs2.Recv(context.Background(), 8, 2*time.Second)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("recv after reconnect = %d msgs, %v", len(msgs), err)
	}
	if dropped != 0 {
		t.Fatalf("fresh subscription reports %d drops", dropped)
	}
}

func TestRemoteSubLeaseExpiry(t *testing.T) {
	// A subscriber that stops polling (crashed without unsubscribe) is
	// reclaimed after the lease expiry; the sweep runs on other pub/sub
	// traffic so no janitor goroutine is involved.
	bus := NewPubSub()
	defer bus.Close()
	addr := servedBusSetup(t, "inproc://pubsub-expiry", "updates", bus, 20*time.Millisecond)

	dead, err := DialSub(addr, "updates", "ns/")
	if err != nil {
		t.Fatal(err)
	}
	if n := bus.Subscribers(); n != 1 {
		t.Fatalf("subscribers = %d", n)
	}
	time.Sleep(50 * time.Millisecond)

	// Any handler triggers the sweep — here a new subscription.
	live, err := DialSub(addr, "updates", "ns/")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if n := bus.Subscribers(); n != 1 {
		t.Fatalf("subscribers after sweep = %d, want 1 (dead lease reclaimed)", n)
	}
	if _, _, err := dead.Recv(context.Background(), 1, 10*time.Millisecond); err == nil {
		t.Fatal("expired subscription still serviced")
	}
	dead.ep.Close()
}

func TestRemoteSubRecvAfterIdleGapKeepsLease(t *testing.T) {
	// Regression: handleRecv used to sweep before refreshing the caller's own
	// lastSeen, so a subscriber whose gap between recv calls just exceeded
	// the expiry reaped its own still-live lease and got "no subscription".
	// The receive must refresh the lease first and deliver normally.
	bus := NewPubSub()
	defer bus.Close()
	addr := servedBusSetup(t, "inproc://pubsub-idle-gap", "updates", bus, 20*time.Millisecond)

	rs, err := DialSub(addr, "updates", "ns/")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	time.Sleep(50 * time.Millisecond) // idle past the lease expiry

	bus.Publish("ns/hardware", 9)
	msgs, _, err := rs.Recv(context.Background(), 8, 2*time.Second)
	if err != nil {
		t.Fatalf("recv after idle gap reaped its own lease: %v", err)
	}
	if len(msgs) != 1 {
		t.Fatalf("recv after idle gap = %d msgs, want 1", len(msgs))
	}
}

func TestRemoteSubClosedBus(t *testing.T) {
	bus := NewPubSub()
	addr := servedBusSetup(t, "inproc://pubsub-closed", "updates", bus, 0)
	rs, err := DialSub(addr, "updates", "")
	if err != nil {
		t.Fatal(err)
	}
	bus.Close()
	if _, _, err := rs.Recv(context.Background(), 1, 50*time.Millisecond); err != ErrClosed {
		t.Fatalf("recv on closed bus = %v, want ErrClosed", err)
	}
	rs.ep.Close()
}

func TestRemoteSubUnknownBus(t *testing.T) {
	bus := NewPubSub()
	defer bus.Close()
	addr := servedBusSetup(t, "inproc://pubsub-unknown", "updates", bus, 0)
	if _, err := DialSub(addr, "nobody", ""); err == nil {
		t.Fatal("subscribe to unknown bus accepted")
	}
}

func TestRemoteSubEngineCloseUnblocksRecv(t *testing.T) {
	// A parked long-poll must not stall engine shutdown, and the waiting
	// client gets an error rather than hanging.
	bus := NewPubSub()
	defer bus.Close()
	engine := mercury.NewEngine()
	srv := NewServer(engine)
	srv.AttachBus("updates", bus)
	addr, err := engine.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := DialSub(addr, "updates", "")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.ep.Close()

	recvErr := make(chan error, 1)
	go func() {
		_, _, err := rs.Recv(context.Background(), 1, 30*time.Second)
		recvErr <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the recv park server-side

	closed := make(chan struct{})
	go func() {
		engine.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("engine.Close stalled behind a parked long-poll")
	}
	select {
	case err := <-recvErr:
		if err == nil {
			// The parked handler may win the race and flush a graceful
			// empty batch before the connection is severed; the next
			// receive must then fail.
			if _, _, err := rs.Recv(context.Background(), 1, time.Second); err == nil {
				t.Fatal("recv keeps succeeding after engine close")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv still parked after engine close")
	}
}

func TestRemoteSubNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		bus := NewPubSub()
		engine := mercury.NewEngine()
		srv := NewServer(engine)
		srv.AttachBus("updates", bus)
		addr, err := engine.Listen("tcp://127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := DialSub(addr, "updates", "ns/")
		if err != nil {
			t.Fatal(err)
		}
		bus.Publish("ns/hardware", i)
		if _, _, err := rs.Recv(context.Background(), 8, time.Second); err != nil {
			t.Fatal(err)
		}
		rs.Close()
		bus.Close()
		engine.Close()
	}

	// Give exited goroutines a moment to be reaped before counting.
	var after int
	for attempt := 0; attempt < 50; attempt++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d across subscribe cycles", before, after)
}
