package zmq

import (
	"encoding/json"
	"testing"

	"github.com/hpcobs/gosoma/internal/mercury"
)

type testMsg struct {
	UID   string `json:"uid"`
	Ranks int    `json:"ranks"`
}

func servedQueue(t *testing.T, scheme string) (*Queue, *RemoteQueue) {
	t.Helper()
	engine := mercury.NewEngine()
	t.Cleanup(func() { engine.Close() })
	srv := NewServer(engine)
	q := NewQueue("tmgr_staging_queue")
	srv.Attach(q)
	addr, err := engine.Listen(scheme)
	if err != nil {
		t.Fatal(err)
	}
	rq, err := Dial(addr, "tmgr_staging_queue")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rq.Close() })
	return q, rq
}

func TestRemoteQueuePushPullTCP(t *testing.T) {
	q, rq := servedQueue(t, "tcp://127.0.0.1:0")
	if rq.Name() != "tmgr_staging_queue" {
		t.Fatalf("name = %q", rq.Name())
	}
	// Remote push → local pull.
	if err := rq.Push(testMsg{UID: "task.000001", Ranks: 20}); err != nil {
		t.Fatal(err)
	}
	v, ok := q.Pull()
	if !ok {
		t.Fatal("local pull failed")
	}
	var m testMsg
	if err := json.Unmarshal(v.(json.RawMessage), &m); err != nil {
		t.Fatal(err)
	}
	if m.UID != "task.000001" || m.Ranks != 20 {
		t.Fatalf("message = %+v", m)
	}
	// Local push → remote pull.
	if err := q.Push(testMsg{UID: "task.000002", Ranks: 41}); err != nil {
		t.Fatal(err)
	}
	var out testMsg
	ok, err := rq.TryPull(&out)
	if err != nil || !ok || out.UID != "task.000002" {
		t.Fatalf("remote pull = %+v, %v, %v", out, ok, err)
	}
	// Empty queue: remote TryPull reports no message.
	ok, err = rq.TryPull(&out)
	if err != nil || ok {
		t.Fatalf("empty pull = %v, %v", ok, err)
	}
}

func TestRemoteQueueLenAndOrder(t *testing.T) {
	_, rq := servedQueue(t, "inproc://remote-queue-len")
	for i := 0; i < 5; i++ {
		if err := rq.Push(testMsg{Ranks: i}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := rq.Len(); err != nil || n != 5 {
		t.Fatalf("len = %d, %v", n, err)
	}
	for i := 0; i < 5; i++ {
		var m testMsg
		ok, err := rq.TryPull(&m)
		if err != nil || !ok || m.Ranks != i {
			t.Fatalf("pull %d = %+v, %v, %v", i, m, ok, err)
		}
	}
}

func TestRemoteQueueUnknownName(t *testing.T) {
	engine := mercury.NewEngine()
	defer engine.Close()
	NewServer(engine)
	addr, _ := engine.Listen("inproc://remote-unknown")
	rq, err := Dial(addr, "nobody")
	if err != nil {
		t.Fatal(err)
	}
	defer rq.Close()
	if err := rq.Push(testMsg{}); err == nil {
		t.Fatal("push to unknown queue accepted")
	}
	if _, err := rq.TryPull(nil); err == nil {
		t.Fatal("pull from unknown queue accepted")
	}
}

func TestRemotePushToClosedQueue(t *testing.T) {
	q, rq := servedQueue(t, "inproc://remote-closed")
	q.Close()
	if err := rq.Push(testMsg{}); err == nil {
		t.Fatal("push to closed queue accepted")
	}
}

func TestDialFailures(t *testing.T) {
	if _, err := Dial("bogus", "q"); err == nil {
		t.Fatal("bad address accepted")
	}
}
