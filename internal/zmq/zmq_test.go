package zmq

import (
	"sync"
	"testing"
	"time"
)

func TestQueuePushPullOrder(t *testing.T) {
	q := NewQueue("agent_scheduling_queue")
	if q.Name() != "agent_scheduling_queue" {
		t.Fatalf("name = %q", q.Name())
	}
	for i := 0; i < 5; i++ {
		if err := q.Push(i); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := q.Pull()
		if !ok || v.(int) != i {
			t.Fatalf("pull %d = %v,%v", i, v, ok)
		}
	}
}

func TestQueueBlockingPull(t *testing.T) {
	q := NewQueue("q")
	got := make(chan interface{}, 1)
	go func() {
		v, _ := q.Pull()
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push("wake")
	select {
	case v := <-got:
		if v != "wake" {
			t.Fatalf("got %v", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Pull never woke")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue("q")
	q.Push(1)
	q.Push(2)
	q.Close()
	if err := q.Push(3); err != ErrClosed {
		t.Fatalf("push after close = %v", err)
	}
	if v, ok := q.Pull(); !ok || v.(int) != 1 {
		t.Fatal("close should not drop queued messages")
	}
	if v, ok := q.Pull(); !ok || v.(int) != 2 {
		t.Fatal("second message lost")
	}
	if _, ok := q.Pull(); ok {
		t.Fatal("drained closed queue should report !ok")
	}
}

func TestQueueTryPull(t *testing.T) {
	q := NewQueue("q")
	if _, ok := q.TryPull(); ok {
		t.Fatal("TryPull on empty queue succeeded")
	}
	q.Push("x")
	if v, ok := q.TryPull(); !ok || v != "x" {
		t.Fatalf("TryPull = %v,%v", v, ok)
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue("q")
	const producers, perProducer = 8, 100
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	seen := make(map[int]bool)
	var mu sync.Mutex
	var cwg sync.WaitGroup
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Pull()
				if !ok {
					return
				}
				mu.Lock()
				if seen[v.(int)] {
					t.Errorf("duplicate delivery of %v", v)
				}
				seen[v.(int)] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for q.Len() > 0 {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	cwg.Wait()
	if len(seen) != producers*perProducer {
		t.Fatalf("delivered %d of %d", len(seen), producers*perProducer)
	}
}

func TestPubSubPrefixMatch(t *testing.T) {
	b := NewPubSub()
	defer b.Close()
	all, cancelAll := b.Subscribe("")
	tasks, cancelTasks := b.Subscribe("task.")
	defer cancelAll()
	defer cancelTasks()

	b.Publish("task.000001", "scheduled")
	b.Publish("pilot.0000", "active")

	m := <-tasks
	if m.Topic != "task.000001" || m.Payload != "scheduled" {
		t.Fatalf("tasks got %+v", m)
	}
	select {
	case m := <-tasks:
		t.Fatalf("tasks received non-matching topic %q", m.Topic)
	default:
	}
	if m := <-all; m.Topic != "task.000001" {
		t.Fatalf("all sub first msg = %+v", m)
	}
	if m := <-all; m.Topic != "pilot.0000" {
		t.Fatalf("all sub second msg = %+v", m)
	}
}

func TestPubSubCancelClosesChannel(t *testing.T) {
	b := NewPubSub()
	defer b.Close()
	ch, cancel := b.Subscribe("x")
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel should be closed after cancel")
	}
	cancel() // double cancel must be safe
	if err := b.Publish("x1", nil); err != nil {
		t.Fatal(err)
	}
}

func TestPubSubHighWaterDrops(t *testing.T) {
	b := NewPubSubHW(2)
	defer b.Close()
	ch, cancel := b.Subscribe("")
	defer cancel()
	for i := 0; i < 5; i++ {
		b.Publish("t", i)
	}
	if b.Dropped() != 3 {
		t.Fatalf("Dropped = %d want 3", b.Dropped())
	}
	if m := <-ch; m.Payload.(int) != 0 {
		t.Fatalf("first = %+v", m)
	}
}

// TestPubSubPerSubscriberDropStats drives one subscriber past its high-water
// mark while a second keeps up, and asserts the drops are attributed to the
// slow subscriber — via Stats while the bus is live, and again via the Close
// return value.
func TestPubSubPerSubscriberDropStats(t *testing.T) {
	b := NewPubSubHW(2)
	slow, cancelSlow := b.Subscribe("task.")
	defer cancelSlow()
	fast, cancelFast := b.Subscribe("task.")
	defer cancelFast()

	const published = 6
	for i := 0; i < published; i++ {
		if err := b.Publish("task.x", i); err != nil {
			t.Fatal(err)
		}
		// The fast subscriber drains as it goes; the slow one never reads.
		<-fast
	}

	stats := b.Stats()
	if len(stats) != 2 {
		t.Fatalf("Stats returned %d entries, want 2", len(stats))
	}
	var slowStats, fastStats *SubStats
	for i := range stats {
		switch {
		case stats[i].Queued == 2:
			slowStats = &stats[i]
		case stats[i].Queued == 0:
			fastStats = &stats[i]
		}
	}
	if slowStats == nil || fastStats == nil {
		t.Fatalf("could not identify slow/fast subscribers in %+v", stats)
	}
	if want := int64(published - 2); slowStats.Dropped != want {
		t.Errorf("slow subscriber Dropped = %d, want %d", slowStats.Dropped, want)
	}
	if fastStats.Dropped != 0 {
		t.Errorf("fast subscriber Dropped = %d, want 0", fastStats.Dropped)
	}
	if b.Dropped() != slowStats.Dropped {
		t.Errorf("bus Dropped = %d, per-sub total = %d", b.Dropped(), slowStats.Dropped)
	}

	final := b.Close()
	var totalDropped int64
	for _, s := range final {
		totalDropped += s.Dropped
	}
	if totalDropped != slowStats.Dropped {
		t.Errorf("Close stats dropped total = %d, want %d", totalDropped, slowStats.Dropped)
	}
	// Drain the slow subscriber: its buffered messages survive the close.
	n := 0
	for range slow {
		n++
	}
	if n != 2 {
		t.Errorf("slow subscriber drained %d buffered messages, want 2", n)
	}
}

func TestPubSubClose(t *testing.T) {
	b := NewPubSub()
	ch, _ := b.Subscribe("")
	b.Close()
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel should close on bus close")
	}
	if err := b.Publish("t", nil); err != ErrClosed {
		t.Fatalf("publish after close = %v", err)
	}
	b.Close() // idempotent
	ch2, _ := b.Subscribe("")
	if _, ok := <-ch2; ok {
		t.Fatal("subscribe after close should return closed channel")
	}
}

func TestPubSubConcurrentPublish(t *testing.T) {
	b := NewPubSubHW(10_000)
	defer b.Close()
	ch, cancel := b.Subscribe("task.")
	defer cancel()
	var wg sync.WaitGroup
	const n = 500
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Publish("task.x", 1)
		}()
	}
	wg.Wait()
	count := 0
	for {
		select {
		case <-ch:
			count++
		default:
			if count != n {
				t.Fatalf("received %d of %d", count, n)
			}
			return
		}
	}
}
