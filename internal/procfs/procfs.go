// Package procfs captures the hardware-namespace data of the paper's
// Listing 2: uptime, process count, available RAM, and per-CPU jiffy
// counters, gathered "by reading /proc/".
//
// Two sources implement the same interface:
//
//   - RealSource reads the live Linux /proc of the machine the examples run
//     on, exactly as the paper's hardware monitoring client does on each
//     Summit compute node.
//   - SyntheticSource fabricates samples for a simulated platform.Node,
//     deriving CPU utilization from the node's actual core occupancy (plus
//     noise), so the simulated Fig. 7/9 utilization plots reflect real
//     scheduler behaviour.
package procfs

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/stats"
)

// CPUStat holds one cpu line of /proc/stat (jiffies).
type CPUStat struct {
	Name                                           string
	User, Nice, System, Idle, IOWait, IRQ, SoftIRQ uint64
}

// Total returns all jiffies in the sample.
func (c CPUStat) Total() uint64 {
	return c.User + c.Nice + c.System + c.Idle + c.IOWait + c.IRQ + c.SoftIRQ
}

// Busy returns the non-idle jiffies.
func (c CPUStat) Busy() uint64 { return c.Total() - c.Idle - c.IOWait }

// Sample is one hardware observation for one host — the fields of the
// paper's PROC namespace data model.
type Sample struct {
	Host           string
	Timestamp      float64
	UptimeSec      float64
	NumProcesses   int
	AvailableRAMMB int64
	// CPUs[0] is the aggregate "cpu" line; CPUs[1:] are per-core lines.
	CPUs []CPUStat
	// UtilPercent is overall CPU utilization over the sampling interval,
	// computed by the Sampler from consecutive raw samples (or directly by
	// the synthetic source).
	UtilPercent float64
}

// ToConduit renders the sample in the Listing 2 layout:
//
//	PROC/<host>/<timestamp>/{Uptime, Num Processes, Available RAM, stat/cpuN}
func (s *Sample) ToConduit() *conduit.Node {
	n := conduit.NewNode()
	base := fmt.Sprintf("PROC/%s/%.6f", s.Host, s.Timestamp)
	n.SetFloat(base+"/Uptime", s.UptimeSec)
	n.SetInt(base+"/Num Processes", int64(s.NumProcesses))
	n.SetInt(base+"/Available RAM", s.AvailableRAMMB)
	n.SetFloat(base+"/CPU Util", s.UtilPercent)
	for _, c := range s.CPUs {
		n.SetIntArray(base+"/stat/"+c.Name, []int64{
			int64(c.User), int64(c.Nice), int64(c.System), int64(c.Idle),
			int64(c.IOWait), int64(c.IRQ), int64(c.SoftIRQ),
		})
	}
	return n
}

// SampleFromConduit parses one host/timestamp subtree back into a Sample;
// the inverse of ToConduit for the analysis side.
func SampleFromConduit(host string, ts float64, sub *conduit.Node) Sample {
	s := Sample{Host: host, Timestamp: ts}
	s.UptimeSec, _ = sub.Float("Uptime")
	if v, ok := sub.Int("Num Processes"); ok {
		s.NumProcesses = int(v)
	}
	s.AvailableRAMMB, _ = sub.Int("Available RAM")
	s.UtilPercent, _ = sub.Float("CPU Util")
	if statNode, ok := sub.Get("stat"); ok {
		for _, name := range statNode.ChildNames() {
			arr, ok := statNode.IntArray(name)
			if !ok || len(arr) < 7 {
				continue
			}
			s.CPUs = append(s.CPUs, CPUStat{
				Name: name, User: uint64(arr[0]), Nice: uint64(arr[1]),
				System: uint64(arr[2]), Idle: uint64(arr[3]),
				IOWait: uint64(arr[4]), IRQ: uint64(arr[5]), SoftIRQ: uint64(arr[6]),
			})
		}
	}
	return s
}

// Source produces hardware samples for one host.
type Source interface {
	// Sample returns the current observation. The source fills every field
	// except UtilPercent, which a Sampler derives from consecutive calls
	// (synthetic sources may fill it directly).
	Sample() (Sample, error)
	// Hostname identifies the node being observed.
	Hostname() string
}

// ---------------------------------------------------------------------------
// Real /proc source.

// RealSource reads the local machine's /proc tree.
//
// Parsing is tolerant by design: /proc contents vary across kernels and can
// be read mid-update (truncated lines, partial files), and a monitor that
// dies on one malformed line silences a whole node. Malformed or truncated
// entries are skipped and counted (ParseSkips); only file-level read
// failures surface as errors.
type RealSource struct {
	root  string
	host  string
	clock des.Clock
	// skips counts malformed /proc entries tolerated since creation.
	skips atomic.Int64
}

// NewRealSource creates a source reading from /proc. A non-empty root
// overrides the /proc path (tests point it at a fixture directory).
func NewRealSource(root string, clock des.Clock) (*RealSource, error) {
	if root == "" {
		root = "/proc"
	}
	host, err := os.Hostname()
	if err != nil {
		host = "localhost"
	}
	if _, err := os.Stat(root); err != nil {
		return nil, fmt.Errorf("procfs: %w", err)
	}
	return &RealSource{root: root, host: host, clock: clock}, nil
}

// Hostname returns the local hostname.
func (r *RealSource) Hostname() string { return r.host }

// ParseSkips reports how many malformed /proc entries (truncated cpu lines,
// non-numeric counters, garbage uptime, missing meminfo fields) have been
// skipped since the source was created.
func (r *RealSource) ParseSkips() int64 { return r.skips.Load() }

// Sample reads /proc/stat, /proc/meminfo and /proc/uptime.
func (r *RealSource) Sample() (Sample, error) {
	s := Sample{Host: r.host, Timestamp: r.clock.Now()}
	if err := r.readStat(&s); err != nil {
		return s, err
	}
	if err := r.readMeminfo(&s); err != nil {
		return s, err
	}
	if err := r.readUptime(&s); err != nil {
		return s, err
	}
	s.NumProcesses = r.countProcesses()
	return s, nil
}

func (r *RealSource) readStat(s *Sample) error {
	data, err := os.ReadFile(r.root + "/stat")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "cpu") {
			continue
		}
		// Truncated (a read racing the kernel's update) or otherwise
		// malformed cpu lines are skipped and counted, never fatal: one bad
		// line must not cost the node its sample.
		fields := strings.Fields(line)
		if len(fields) < 8 {
			r.skips.Add(1)
			continue
		}
		var vals [7]uint64
		ok := true
		for i := 0; i < 7; i++ {
			v, err := strconv.ParseUint(fields[i+1], 10, 64)
			if err != nil {
				ok = false
				break
			}
			vals[i] = v
		}
		if !ok {
			r.skips.Add(1)
			continue
		}
		s.CPUs = append(s.CPUs, CPUStat{
			Name: fields[0], User: vals[0], Nice: vals[1], System: vals[2],
			Idle: vals[3], IOWait: vals[4], IRQ: vals[5], SoftIRQ: vals[6],
		})
	}
	// Zero usable cpu lines (wholly corrupt stat) still yields a sample —
	// the other fields may be fine — but counts as a skip.
	if len(s.CPUs) == 0 {
		r.skips.Add(1)
	}
	return nil
}

func (r *RealSource) readMeminfo(s *Sample) error {
	data, err := os.ReadFile(r.root + "/meminfo")
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "MemAvailable:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				kb, err := strconv.ParseInt(fields[1], 10, 64)
				if err == nil && kb >= 0 {
					s.AvailableRAMMB = kb / 1024
					return nil
				}
			}
			// Truncated or non-numeric MemAvailable: keep the zero value.
			r.skips.Add(1)
			return nil
		}
	}
	// No MemAvailable at all (older kernels): tolerated, counted.
	r.skips.Add(1)
	return nil
}

func (r *RealSource) readUptime(s *Sample) error {
	data, err := os.ReadFile(r.root + "/uptime")
	if err != nil {
		return err
	}
	fields := strings.Fields(string(data))
	if len(fields) >= 1 {
		up, err := strconv.ParseFloat(fields[0], 64)
		if err == nil && up >= 0 {
			s.UptimeSec = up
			return nil
		}
	}
	// Empty or garbage uptime file: keep the zero value.
	r.skips.Add(1)
	return nil
}

func (r *RealSource) countProcesses() int {
	entries, err := os.ReadDir(r.root)
	if err != nil {
		return 0
	}
	count := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if name[0] >= '0' && name[0] <= '9' {
			count++
		}
	}
	return count
}

// ---------------------------------------------------------------------------
// Synthetic source for simulated nodes.

// SyntheticSource fabricates /proc-shaped samples for a simulated node. CPU
// utilization tracks the node's real core occupancy: each busy core
// contributes ~95% of one core of utilization (plus noise), each free core
// contributes background noise only — the paper's Fig. 7 spikes "as a rank
// starts" fall out of this directly.
type SyntheticSource struct {
	node  *platform.Node
	clock des.Clock
	rng   *stats.RNG

	bootTime float64
	jiffies  []CPUStat // accumulated counters, advanced on each Sample
	lastTime float64
	compact  bool
}

// NewSyntheticSource observes the given simulated node.
func NewSyntheticSource(node *platform.Node, clock des.Clock, seed uint64) *SyntheticSource {
	usable := node.Spec.UsableCores()
	src := &SyntheticSource{
		node:  node,
		clock: clock,
		rng:   stats.NewRNG(seed ^ uint64(node.ID+1)),
	}
	src.jiffies = make([]CPUStat, usable+1)
	src.jiffies[0].Name = "cpu"
	for i := 1; i <= usable; i++ {
		src.jiffies[i].Name = fmt.Sprintf("cpu%d", i-1)
	}
	return src
}

// Hostname returns the simulated node's name.
func (s *SyntheticSource) Hostname() string { return s.node.Name }

// SetCompact restricts samples to the aggregate "cpu" line, dropping the
// per-core lines. Large-scale experiments use this to keep the hardware
// namespace (hundreds of nodes × many samples) lean.
func (s *SyntheticSource) SetCompact(v bool) { s.compact = v }

// Sample fabricates the current observation.
func (s *SyntheticSource) Sample() (Sample, error) {
	now := s.clock.Now()
	dt := now - s.lastTime
	if dt < 0 {
		dt = 0
	}
	s.lastTime = now

	const hz = 100.0 // jiffies per second
	owners := s.node.CoreOwners()
	busyFrac := make([]float64, len(owners))
	totalBusy := 0.0
	for i, o := range owners {
		if o != "" {
			base := s.node.ActivityOf(o)
			busyFrac[i] = clamp(base*(1+0.05*s.rng.Norm()), 0, 1)
		} else {
			busyFrac[i] = clamp(0.01+0.01*s.rng.Float64(), 0, 1)
		}
		totalBusy += busyFrac[i]
	}

	// Advance per-core jiffy counters.
	for i := range owners {
		j := &s.jiffies[i+1]
		busyJ := uint64(busyFrac[i] * dt * hz)
		idleJ := uint64((1 - busyFrac[i]) * dt * hz)
		j.User += busyJ * 7 / 10
		j.System += busyJ - busyJ*7/10
		j.Idle += idleJ
	}
	agg := &s.jiffies[0]
	agg.User, agg.System, agg.Idle = 0, 0, 0
	for i := 1; i < len(s.jiffies); i++ {
		agg.User += s.jiffies[i].User
		agg.System += s.jiffies[i].System
		agg.Idle += s.jiffies[i].Idle
	}

	util := 0.0
	if len(owners) > 0 {
		util = totalBusy / float64(len(owners)) * 100
	}
	ramUsed := int64(float64(s.node.Spec.MemMB) * (0.05 + 0.008*float64(s.node.BusyCores())))
	procs := 3 + s.node.BusyCores() // system daemons + one process per busy core
	ncpu := len(s.jiffies)
	if s.compact {
		ncpu = 1
	}
	cpus := make([]CPUStat, ncpu)
	copy(cpus, s.jiffies[:ncpu])
	return Sample{
		Host:           s.node.Name,
		Timestamp:      now,
		UptimeSec:      s.bootTime + now,
		NumProcesses:   procs,
		AvailableRAMMB: int64(s.node.Spec.MemMB) - ramUsed,
		CPUs:           cpus,
		UtilPercent:    util,
	}, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ---------------------------------------------------------------------------
// Sampler: turns consecutive raw samples into interval utilization.

// Sampler wraps a Source and computes UtilPercent between consecutive
// samples from the jiffy deltas (needed for the real source, whose counters
// are cumulative).
type Sampler struct {
	src  Source
	prev *Sample
}

// NewSampler wraps src.
func NewSampler(src Source) *Sampler { return &Sampler{src: src} }

// Hostname returns the underlying source's hostname.
func (sm *Sampler) Hostname() string { return sm.src.Hostname() }

// Sample returns the next observation with UtilPercent filled in. The first
// call reports the source's own UtilPercent (synthetic) or 0 (real).
func (sm *Sampler) Sample() (Sample, error) {
	cur, err := sm.src.Sample()
	if err != nil {
		return cur, err
	}
	if sm.prev != nil && len(cur.CPUs) > 0 && len(sm.prev.CPUs) > 0 {
		dTotal := int64(cur.CPUs[0].Total()) - int64(sm.prev.CPUs[0].Total())
		dBusy := int64(cur.CPUs[0].Busy()) - int64(sm.prev.CPUs[0].Busy())
		if dTotal > 0 && dBusy >= 0 {
			cur.UtilPercent = float64(dBusy) / float64(dTotal) * 100
		}
	}
	prev := cur
	sm.prev = &prev
	return cur, nil
}
