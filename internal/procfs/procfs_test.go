package procfs

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/platform"
)

// writeFixture creates a fake /proc tree for the real-source tests so they
// do not depend on the host kernel.
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	stat := `cpu  100 0 50 800 10 0 5 0 0 0
cpu0 60 0 30 400 5 0 3 0 0 0
cpu1 40 0 20 400 5 0 2 0 0 0
intr 12345
ctxt 67890
`
	mem := `MemTotal:       16384000 kB
MemFree:         4096000 kB
MemAvailable:    8192000 kB
`
	up := "49902.13 99000.00\n"
	for name, content := range map[string]string{"stat": stat, "meminfo": mem, "uptime": up} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Two fake PIDs and one non-PID dir.
	for _, d := range []string{"123", "456", "sys"} {
		if err := os.Mkdir(filepath.Join(dir, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRealSourceFixture(t *testing.T) {
	dir := writeFixture(t)
	src, err := NewRealSource(dir, des.NewRealClock())
	if err != nil {
		t.Fatal(err)
	}
	s, err := src.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CPUs) != 3 {
		t.Fatalf("cpus = %d want 3 (agg + 2)", len(s.CPUs))
	}
	if s.CPUs[0].Name != "cpu" || s.CPUs[0].User != 100 || s.CPUs[0].Idle != 800 {
		t.Fatalf("agg = %+v", s.CPUs[0])
	}
	if s.AvailableRAMMB != 8000 {
		t.Fatalf("ram = %d want 8000", s.AvailableRAMMB)
	}
	if s.UptimeSec != 49902.13 {
		t.Fatalf("uptime = %v", s.UptimeSec)
	}
	if s.NumProcesses != 2 {
		t.Fatalf("procs = %d want 2", s.NumProcesses)
	}
}

func TestRealSourceMissingDir(t *testing.T) {
	if _, err := NewRealSource("/no/such/dir", des.NewRealClock()); err == nil {
		t.Fatal("missing root accepted")
	}
}

func TestRealSourceLiveProc(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("live /proc requires linux")
	}
	src, err := NewRealSource("", des.NewRealClock())
	if err != nil {
		t.Fatal(err)
	}
	s, err := src.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.CPUs) < 2 || s.NumProcesses < 1 || s.UptimeSec <= 0 {
		t.Fatalf("implausible live sample: %+v", s)
	}
}

func TestCPUStatTotals(t *testing.T) {
	c := CPUStat{User: 10, Nice: 1, System: 5, Idle: 80, IOWait: 2, IRQ: 1, SoftIRQ: 1}
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
	if c.Busy() != 18 {
		t.Fatalf("busy = %d", c.Busy())
	}
}

func TestSamplerComputesIntervalUtil(t *testing.T) {
	dir := writeFixture(t)
	src, err := NewRealSource(dir, des.NewRealClock())
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSampler(src)
	if sm.Hostname() == "" {
		t.Fatal("empty hostname")
	}
	if _, err := sm.Sample(); err != nil {
		t.Fatal(err)
	}
	// Advance the counters: +100 busy, +100 idle jiffies → 50% util.
	stat := `cpu  150 0 100 900 10 0 5 0 0 0
cpu0 85 0 55 450 5 0 3 0 0 0
cpu1 65 0 45 450 5 0 2 0 0 0
`
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(stat), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := sm.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if s2.UtilPercent < 49 || s2.UtilPercent > 51 {
		t.Fatalf("util = %v want ~50", s2.UtilPercent)
	}
}

func TestSyntheticTracksOccupancy(t *testing.T) {
	eng := des.NewEngine()
	node := platform.NewNode(7, platform.Summit())
	src := NewSyntheticSource(node, eng, 42)
	if src.Hostname() != "cn0007" {
		t.Fatalf("host = %q", src.Hostname())
	}

	s0, err := src.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if s0.UtilPercent > 5 {
		t.Fatalf("idle node util = %v", s0.UtilPercent)
	}

	node.AllocCores("task.000000", 21) // half the node
	eng.RunUntil(30)
	s1, _ := src.Sample()
	if s1.UtilPercent < 40 || s1.UtilPercent > 60 {
		t.Fatalf("half-busy util = %v want ~47.5", s1.UtilPercent)
	}
	if s1.NumProcesses != 3+21 {
		t.Fatalf("procs = %d", s1.NumProcesses)
	}
	if s1.AvailableRAMMB >= s0.AvailableRAMMB {
		t.Fatal("RAM should shrink when busy")
	}

	// GPU-bound task with low declared activity keeps CPU util low.
	node.Release("task.000000")
	node.AllocCores("sim.0", 42)
	node.SetActivity("sim.0", 0.2)
	eng.RunUntil(60)
	s2, _ := src.Sample()
	if s2.UtilPercent < 10 || s2.UtilPercent > 30 {
		t.Fatalf("gpu-bound util = %v want ~20", s2.UtilPercent)
	}
}

func TestSyntheticJiffiesMonotone(t *testing.T) {
	eng := des.NewEngine()
	node := platform.NewNode(0, platform.Summit())
	node.AllocCores("t", 10)
	src := NewSyntheticSource(node, eng, 1)
	var prev uint64
	for i := 1; i <= 5; i++ {
		eng.RunUntil(float64(i * 30))
		s, err := src.Sample()
		if err != nil {
			t.Fatal(err)
		}
		tot := s.CPUs[0].Total()
		if tot < prev {
			t.Fatalf("aggregate jiffies decreased: %d -> %d", prev, tot)
		}
		prev = tot
		if len(s.CPUs) != 43 {
			t.Fatalf("cpu lines = %d want 43", len(s.CPUs))
		}
	}
}

func TestConduitRoundTrip(t *testing.T) {
	eng := des.NewEngine()
	node := platform.NewNode(3, platform.Summit())
	node.AllocCores("t", 5)
	src := NewSyntheticSource(node, eng, 9)
	eng.RunUntil(30)
	s, _ := src.Sample()

	n := s.ToConduit()
	// Layout must match Listing 2: PROC/<host>/<ts>/...
	hosts := n.Child("PROC").ChildNames()
	if len(hosts) != 1 || hosts[0] != "cn0003" {
		t.Fatalf("hosts = %v", hosts)
	}
	tsNames := n.Child("PROC").Child("cn0003").ChildNames()
	if len(tsNames) != 1 {
		t.Fatalf("timestamps = %v", tsNames)
	}
	sub, _ := n.Get("PROC/cn0003/" + tsNames[0])
	back := SampleFromConduit("cn0003", s.Timestamp, sub)
	if back.NumProcesses != s.NumProcesses ||
		back.AvailableRAMMB != s.AvailableRAMMB ||
		back.UptimeSec != s.UptimeSec ||
		back.UtilPercent != s.UtilPercent {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, s)
	}
	if len(back.CPUs) != len(s.CPUs) {
		t.Fatalf("cpu count %d vs %d", len(back.CPUs), len(s.CPUs))
	}
	if !strings.HasPrefix(back.CPUs[1].Name, "cpu") {
		t.Fatalf("cpu name = %q", back.CPUs[1].Name)
	}
}

// TestRealSourceCorruptProc drives the real source through malformed and
// truncated /proc contents: every case must yield a sample (never an error),
// skipping and counting the bad entries while still parsing whatever is
// intact. A monitor must not lose a node to one garbled line.
func TestRealSourceCorruptProc(t *testing.T) {
	const goodMem = "MemTotal: 16384000 kB\nMemAvailable: 8192000 kB\n"
	const goodUp = "100.5 200.0\n"
	cases := []struct {
		name          string
		stat, mem, up string
		wantCPUs      int
		wantRAM       int64
		wantUptime    float64
		wantSkips     int64
	}{
		{
			name: "truncated cpu line",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\ncpu0 60 0 30\n",
			mem:  goodMem, up: goodUp,
			wantCPUs: 1, wantRAM: 8000, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "non-numeric jiffies",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\ncpu0 sixty 0 30 400 5 0 3 0 0 0\n",
			mem:  goodMem, up: goodUp,
			wantCPUs: 1, wantRAM: 8000, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "negative jiffies",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\ncpu0 -60 0 30 400 5 0 3 0 0 0\n",
			mem:  goodMem, up: goodUp,
			wantCPUs: 1, wantRAM: 8000, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "empty stat",
			stat: "", mem: goodMem, up: goodUp,
			wantCPUs: 0, wantRAM: 8000, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "stat without cpu lines",
			stat: "intr 12345\nctxt 67890\n", mem: goodMem, up: goodUp,
			wantCPUs: 0, wantRAM: 8000, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "missing MemAvailable",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\n",
			mem:  "MemTotal: 16384000 kB\nMemFree: 4096000 kB\n", up: goodUp,
			wantCPUs: 1, wantRAM: 0, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "non-numeric MemAvailable",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\n",
			mem:  "MemAvailable: lots kB\n", up: goodUp,
			wantCPUs: 1, wantRAM: 0, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "truncated MemAvailable line",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\n",
			mem:  "MemAvailable:", up: goodUp,
			wantCPUs: 1, wantRAM: 0, wantUptime: 100.5, wantSkips: 1,
		},
		{
			name: "garbage uptime",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\n",
			mem:  goodMem, up: "not-a-number\n",
			wantCPUs: 1, wantRAM: 8000, wantUptime: 0, wantSkips: 1,
		},
		{
			name: "empty uptime",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\n",
			mem:  goodMem, up: "",
			wantCPUs: 1, wantRAM: 8000, wantUptime: 0, wantSkips: 1,
		},
		{
			name: "negative uptime",
			stat: "cpu  100 0 50 800 10 0 5 0 0 0\n",
			mem:  goodMem, up: "-3.5 1.0\n",
			wantCPUs: 1, wantRAM: 8000, wantUptime: 0, wantSkips: 1,
		},
		{
			name: "everything corrupt",
			stat: "cpu garbage\n", mem: "MemAvailable: ??? kB\n", up: "x\n",
			wantCPUs: 0, wantRAM: 0, wantUptime: 0, wantSkips: 4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			files := map[string]string{"stat": tc.stat, "meminfo": tc.mem, "uptime": tc.up}
			for name, content := range files {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			src, err := NewRealSource(dir, des.NewRealClock())
			if err != nil {
				t.Fatal(err)
			}
			s, err := src.Sample()
			if err != nil {
				t.Fatalf("corrupt /proc must not error: %v", err)
			}
			if len(s.CPUs) != tc.wantCPUs {
				t.Errorf("cpus = %d want %d", len(s.CPUs), tc.wantCPUs)
			}
			if s.AvailableRAMMB != tc.wantRAM {
				t.Errorf("ram = %d want %d", s.AvailableRAMMB, tc.wantRAM)
			}
			if s.UptimeSec != tc.wantUptime {
				t.Errorf("uptime = %v want %v", s.UptimeSec, tc.wantUptime)
			}
			if got := src.ParseSkips(); got != tc.wantSkips {
				t.Errorf("skips = %d want %d", got, tc.wantSkips)
			}
		})
	}
}

// TestRealSourceSkipsAccumulate verifies the skip counter is cumulative
// across samples (monitors report it as a health metric).
func TestRealSourceSkipsAccumulate(t *testing.T) {
	dir := writeFixture(t)
	src, err := NewRealSource(dir, des.NewRealClock())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Sample(); err != nil {
		t.Fatal(err)
	}
	if src.ParseSkips() != 0 {
		t.Fatalf("clean fixture produced %d skips", src.ParseSkips())
	}
	bad := "cpu  100 0 50 800 10 0 5 0 0 0\ncpu0 trunc\n"
	if err := os.WriteFile(filepath.Join(dir, "stat"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := src.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if src.ParseSkips() != 3 {
		t.Fatalf("skips = %d want 3", src.ParseSkips())
	}
}

func TestSampleFromConduitTolerant(t *testing.T) {
	eng := des.NewEngine()
	node := platform.NewNode(0, platform.Summit())
	src := NewSyntheticSource(node, eng, 1)
	s, _ := src.Sample()
	n := s.ToConduit()
	sub, _ := n.Get("PROC/cn0000")
	tsName := sub.ChildNames()[0]
	tsNode, _ := sub.Get(tsName)
	tsNode.Remove("stat") // degraded publisher: no raw counters
	back := SampleFromConduit("cn0000", 0, tsNode)
	if len(back.CPUs) != 0 {
		t.Fatal("missing stat should yield no CPUs")
	}
	if back.NumProcesses != s.NumProcesses {
		t.Fatal("scalar fields should still parse")
	}
}
