package experiments

import (
	"strings"
	"sync"
	"testing"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/stats"
)

// Runs are deterministic for a seed, so tests share one tuning and one
// overload run.
var (
	tuningOnce sync.Once
	tuningRun  *OpenFOAMRun
	tuningErr  error

	overloadOnce sync.Once
	overloadRun  *OpenFOAMRun
	overloadErr  error
)

func getTuning(t *testing.T) *OpenFOAMRun {
	t.Helper()
	tuningOnce.Do(func() { tuningRun, tuningErr = RunOpenFOAM(TuningOpenFOAM()) })
	if tuningErr != nil {
		t.Fatal(tuningErr)
	}
	return tuningRun
}

func getOverload(t *testing.T) *OpenFOAMRun {
	t.Helper()
	overloadOnce.Do(func() { overloadRun, overloadErr = RunOpenFOAM(OverloadOpenFOAM()) })
	if overloadErr != nil {
		t.Fatal(overloadErr)
	}
	return overloadRun
}

func TestOverloadRunsAllTasks(t *testing.T) {
	run := getOverload(t)
	if len(run.Tasks) != 80 {
		t.Fatalf("tasks = %d want 80", len(run.Tasks))
	}
	for _, rec := range run.Tasks {
		if rec.ExecTime <= 0 {
			t.Fatalf("task %s has no SOMA-observed exec time", rec.UID)
		}
		if rec.NodesSpanned < 1 {
			t.Fatalf("task %s spanned %d nodes", rec.UID, rec.NodesSpanned)
		}
	}
	if run.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}

// TestFig4Shape pins the paper's strong-scaling observation on the
// SOMA-observed data: monotone improvement with diminishing returns beyond
// two nodes (82 ranks), and the advisor picking 82.
func TestFig4Shape(t *testing.T) {
	run := getOverload(t)
	byRanks := run.ByRanks()
	means := map[int]float64{}
	for r, ts := range byRanks {
		if len(ts) != 20 {
			t.Fatalf("ranks %d has %d instances, want 20", r, len(ts))
		}
		means[r] = stats.Mean(ts)
	}
	if !(means[20] > means[41] && means[41] > means[82] && means[82] > means[164]) {
		t.Fatalf("scaling not monotone: %v", means)
	}
	if big := means[20] / means[82]; big < 2 {
		t.Errorf("20→82 speedup %.2f, want > 2x", big)
	}
	if small := means[82] / means[164]; small > 1.3 {
		t.Errorf("82→164 speedup %.2f, want limited (< 1.3x)", small)
	}
	if got := core.NewAdvisor().SuggestRanks(means); got != 82 {
		t.Errorf("advisor suggests %d ranks, want 82", got)
	}
}

// TestFig5Shape: MPI_Recv + MPI_Waitall dominate every rank of the 20-rank
// task, per the TAU profiles stored in the performance namespace.
func TestFig5Shape(t *testing.T) {
	run := getTuning(t)
	profs, err := run.Analysis.TAUProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) == 0 {
		t.Fatal("no TAU profiles in the performance namespace")
	}
	// Total rank profiles = sum of rank counts = 20+41+82+164.
	if len(profs) != 307 {
		t.Fatalf("profiles = %d want 307", len(profs))
	}
	for _, p := range profs {
		share := (p.Seconds["MPI_Recv"] + p.Seconds["MPI_Waitall"]) / p.Total()
		if share < 0.25 || share > 0.8 {
			t.Fatalf("task %s rank %d Recv+Waitall share %.2f not dominant",
				p.TaskUID, p.Rank, share)
		}
		if p.Host == "" {
			t.Fatal("profile missing hostname tag")
		}
	}
}

// TestFig6Shape: spreading a 20-rank task over more nodes improves its
// execution time; the 41-rank gain is smaller.
func TestFig6Shape(t *testing.T) {
	run := getOverload(t)
	rel := func(ranks int) (packed, spread float64) {
		bySpan := run.BySpan(ranks)
		var sp []float64
		for span, ts := range bySpan {
			if span == 1 {
				packed = stats.Mean(ts)
			} else {
				sp = append(sp, ts...)
			}
		}
		return packed, stats.Mean(sp)
	}
	p20, s20 := rel(20)
	if p20 == 0 || s20 == 0 {
		t.Skip("overload run produced no span diversity for 20 ranks at this seed")
	}
	if s20 >= p20 {
		t.Errorf("spread 20-rank mean %.1f should beat packed %.1f", s20, p20)
	}
	gain20 := p20 / s20
	if gain20 < 1.01 {
		t.Errorf("20-rank spread gain %.3f too small", gain20)
	}
}

// TestFig7Shape: per-node utilization series exist for every app node, and
// task starts are visible with util spikes afterwards.
func TestFig7Shape(t *testing.T) {
	run := getTuning(t)
	if len(run.Hosts) != run.Cfg.AppNodes {
		t.Fatalf("hosts = %v", run.Hosts)
	}
	starts, err := run.Analysis.TaskStarts()
	if err != nil {
		t.Fatal(err)
	}
	// Service tasks (SOMA clients) also appear as tasks — Fig. 2's model —
	// so the start markers include them on top of the application tasks.
	started := map[string]bool{}
	for _, st := range starts {
		started[st.UID] = true
	}
	for _, rec := range run.Tasks {
		if !started[rec.UID] {
			t.Fatalf("application task %s has no start marker", rec.UID)
		}
	}
	sawSpike := false
	for _, host := range run.Hosts {
		series, err := run.Analysis.CPUUtilSeries(host)
		if err != nil {
			t.Fatal(err)
		}
		if len(series) < 5 {
			t.Fatalf("host %s has %d samples", host, len(series))
		}
		for _, p := range series {
			if p.Util > 80 {
				sawSpike = true
			}
			if p.Util < 0 || p.Util > 100 {
				t.Fatalf("util out of range: %v", p.Util)
			}
		}
	}
	if !sawSpike {
		t.Fatal("no utilization spike observed on any node")
	}
}

// TestFig8Shape: the timeline occupancy is a valid partition with a
// bootstrap band at the start and a dominant run band mid-workflow.
func TestFig8Shape(t *testing.T) {
	for _, run := range []*OpenFOAMRun{getTuning(t), getOverload(t)} {
		const buckets = 10
		occ := run.Timeline.Occupancy(run.Makespan, buckets)
		for b, m := range occ {
			sum := 0.0
			for _, v := range m {
				sum += v
			}
			if sum < 0.99 || sum > 1.01 {
				t.Fatalf("bucket %d fractions sum to %v", b, sum)
			}
		}
		if occ[0][1] == 0 { // ResBootstrap
			t.Error("no bootstrap band at workflow start")
		}
		u := run.Timeline.Utilization(run.Makespan)
		if u < 0.3 || u > 1 {
			t.Errorf("overall utilization %.2f implausible", u)
		}
	}
}

func TestReportsRender(t *testing.T) {
	for _, r := range []Report{Table1(), Table2()} {
		s := r.String()
		if !strings.Contains(s, r.Title) || len(s) < 100 {
			t.Errorf("report %s renders poorly:\n%s", r.ID, s)
		}
	}
}

func TestInvalidOpenFOAMConfig(t *testing.T) {
	if _, err := RunOpenFOAM(OpenFOAMConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

// TestObservabilityFidelity: the execution time recovered from the SOMA
// workflow namespace must match the runtime's own measurement for every
// task — monitoring through RPC loses nothing.
func TestObservabilityFidelity(t *testing.T) {
	run := getOverload(t)
	for _, rec := range run.Tasks {
		diff := rec.ExecTime - rec.GroundTruth
		if diff < -1 || diff > 1 {
			t.Fatalf("task %s: SOMA %.3f vs runtime %.3f", rec.UID, rec.ExecTime, rec.GroundTruth)
		}
	}
}
