package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/tau"
)

// Fig4 reproduces the OpenFOAM strong-scaling study: 20 instances of each
// rank configuration in one RP-managed workflow, execution times taken from
// the SOMA workflow namespace.
func Fig4() (Report, error) {
	run, err := RunOpenFOAM(OverloadOpenFOAM())
	if err != nil {
		return Report{}, err
	}
	defer run.Close()

	byRanks := run.ByRanks()
	ranks := make([]int, 0, len(byRanks))
	for r := range byRanks {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)

	var rows [][]string
	means := map[int]float64{}
	for _, r := range ranks {
		s := stats.Summarize(byRanks[r])
		means[r] = s.Mean
		rows = append(rows, boxRow(fmt.Sprintf("%d ranks", r), s))
	}
	advisor := core.NewAdvisor()
	suggest := advisor.SuggestRanks(means)

	var sb strings.Builder
	sb.WriteString(table(boxHeader, rows))
	sb.WriteString("\nexecution time (s) means: ")
	for _, r := range ranks {
		fmt.Fprintf(&sb, "%d→%.1f  ", r, means[r])
	}
	if len(ranks) >= 2 {
		last, prev := ranks[len(ranks)-1], ranks[len(ranks)-2]
		fmt.Fprintf(&sb, "\nspeedup %d→%d ranks: %.2fx (limited benefit beyond two nodes)",
			prev, last, means[prev]/means[last])
	}
	fmt.Fprintf(&sb, "\nadvisor suggestion for RP task description: %d ranks\n", suggest)
	return Report{
		ID:    "fig4",
		Title: "OpenFOAM strong scaling (20 instances per configuration)",
		Notes: "Paper: execution time drops steeply to 82 ranks, then shows " +
			"limited benefit beyond two nodes; SOMA-measured times feed the " +
			"advisor that would re-configure RP task descriptions.",
		Body: sb.String(),
	}, nil
}

// Fig5 reproduces the per-rank MPI time view from the TAU SOMA plugin for
// one 20-rank task of the tuning workflow.
func Fig5() (Report, error) {
	run, err := RunOpenFOAM(TuningOpenFOAM())
	if err != nil {
		return Report{}, err
	}
	defer run.Close()

	profs, err := run.Analysis.TAUProfiles()
	if err != nil {
		return Report{}, err
	}
	// Pick the 20-rank task.
	var uid string
	for _, t := range run.Tasks {
		if t.Ranks == 20 {
			uid = t.UID
			break
		}
	}
	var sel []tau.Profile
	for _, p := range profs {
		if p.TaskUID == uid {
			sel = append(sel, p)
		}
	}
	if len(sel) == 0 {
		return Report{}, fmt.Errorf("experiments: no TAU profiles for %s", uid)
	}

	fns := []string{"MPI_Recv", "MPI_Waitall", "MPI_Allreduce", "MPI_Isend", ".TAU application"}
	var rows [][]string
	for _, p := range sel {
		row := []string{fmt.Sprintf("rank %02d", p.Rank)}
		for _, fn := range fns {
			row = append(row, fmt.Sprintf("%.1f", p.Seconds[fn]))
		}
		row = append(row, fmt.Sprintf("%.0f%%", p.MPITime()/p.Total()*100))
		rows = append(rows, row)
	}
	header := append([]string{"rank"}, fns...)
	header = append(header, "MPI share")

	var sb strings.Builder
	sb.WriteString(table(header, rows))
	imb := tau.LoadImbalance(sel, uid, "MPI_Recv")
	fmt.Fprintf(&sb, "\nMPI_Recv load imbalance (max/mean across ranks): %.2f\n", imb)
	totals := tau.FunctionTotals(sel)
	recvWait := totals["MPI_Recv"] + totals["MPI_Waitall"]
	all := 0.0
	for _, v := range totals {
		all += v
	}
	fmt.Fprintf(&sb, "MPI_Recv+MPI_Waitall share of task time: %.0f%%\n", recvWait/all*100)
	return Report{
		ID:    "fig5",
		Title: fmt.Sprintf("TAU per-rank MPI times for one 20-rank task (%s)", uid),
		Notes: "Paper: a large portion of time for each rank is spent in " +
			"MPI_Recv() and MPI_Waitall(); the hostname tag and task id " +
			"attribute each profile to the right heterogeneous task.",
		Body: sb.String(),
	}, nil
}

// Fig6 reproduces the placement study: execution time of 20- and 41-rank
// tasks grouped by how many nodes their ranks landed on during the
// overloaded run.
func Fig6() (Report, error) {
	run, err := RunOpenFOAM(OverloadOpenFOAM())
	if err != nil {
		return Report{}, err
	}
	defer run.Close()

	var sb strings.Builder
	for _, ranks := range []int{20, 41} {
		bySpan := run.BySpan(ranks)
		spans := make([]int, 0, len(bySpan))
		for s := range bySpan {
			spans = append(spans, s)
		}
		sort.Ints(spans)
		var rows [][]string
		for _, s := range spans {
			rows = append(rows, boxRow(fmt.Sprintf("%d ranks on %d node(s)", ranks, s),
				stats.Summarize(bySpan[s])))
		}
		sb.WriteString(table(boxHeader, rows))
		sb.WriteString("\n")
	}
	return Report{
		ID:    "fig6",
		Title: "Execution time vs. number of nodes the ranks landed on",
		Notes: "Paper: 20-rank tasks improve when spread across more nodes " +
			"(they were scheduled later, onto less-contended resources); the " +
			"41-rank improvement is smaller as cross-node communication grows.",
		Body: sb.String(),
	}, nil
}

// Fig7 reproduces the per-node CPU-utilization timeline of the tuning
// workflow, with task-start markers from the RP monitor.
func Fig7() (Report, error) {
	run, err := RunOpenFOAM(TuningOpenFOAM())
	if err != nil {
		return Report{}, err
	}
	defer run.Close()

	starts, err := run.Analysis.TaskStarts()
	if err != nil {
		return Report{}, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sampled every %.0f s by the SOMA hardware monitoring client\n\n",
		run.Cfg.MonitorIntervalSec)
	for _, host := range run.Hosts {
		series, err := run.Analysis.CPUUtilSeries(host)
		if err != nil {
			return Report{}, err
		}
		vals := make([]float64, len(series))
		for i, p := range series {
			vals[i] = p.Util
		}
		fmt.Fprintf(&sb, "%s |%s| util %% (min %.0f, max %.0f)\n",
			host, sparkline(vals, 0, 100), stats.Min(vals), stats.Max(vals))
	}
	sb.WriteString("\ntask starts observed by the SOMA RP monitor (orange dots):\n")
	for _, st := range starts {
		fmt.Fprintf(&sb, "  t=%7.1fs  %s\n", st.Time, st.UID)
	}
	return Report{
		ID:    "fig7",
		Title: "CPU utilization per compute node, OpenFOAM tuning workflow",
		Notes: "Paper: as a rank starts there is a corresponding spike in CPU " +
			"utilization; imbalance across nodes in the latter half of the run " +
			"shows room for better scheduling.",
		Body: sb.String(),
	}, nil
}

// Fig8 reproduces the RP resource-utilization timelines (overload on top,
// tuning below): per-time-bucket fractions of core-time in bootstrap,
// scheduling, running, and idle.
func Fig8() (Report, error) {
	var sb strings.Builder
	renderRun := func(label string, cfg OpenFOAMConfig) error {
		run, err := RunOpenFOAM(cfg)
		if err != nil {
			return err
		}
		defer run.Close()
		const buckets = 12
		occ := run.Timeline.Occupancy(run.Makespan, buckets)
		fmt.Fprintf(&sb, "%s workflow (%d cores, makespan %.0f s, overall task-time utilization %.0f%%)\n",
			label, run.Timeline.Cores(), run.Makespan,
			run.Timeline.Utilization(run.Makespan)*100)
		var rows [][]string
		for b, m := range occ {
			lo := run.Makespan * float64(b) / buckets
			hi := run.Makespan * float64(b+1) / buckets
			rows = append(rows, []string{
				fmt.Sprintf("%5.0f-%5.0fs", lo, hi),
				fmt.Sprintf("%5.1f%%", m[pilot.ResBootstrap]*100),
				fmt.Sprintf("%5.1f%%", m[pilot.ResSchedule]*100),
				fmt.Sprintf("%5.1f%%", m[pilot.ResRun]*100),
				fmt.Sprintf("%5.1f%%", m[pilot.ResIdle]*100),
			})
		}
		sb.WriteString(table(
			[]string{"interval", "bootstrap", "schedule", "run", "idle"}, rows))
		sb.WriteString("\n")
		sb.WriteString(run.Timeline.Gantt(pilot.GanttOptions{
			Width: 72, MaxRows: 24, End: run.Makespan,
		}))
		sb.WriteString("\n")
		return nil
	}
	if err := renderRun("Overload", OverloadOpenFOAM()); err != nil {
		return Report{}, err
	}
	if err := renderRun("Tuning", TuningOpenFOAM()); err != nil {
		return Report{}, err
	}
	return Report{
		ID:    "fig8",
		Title: "RP resource utilization (top: overload, bottom: tuning)",
		Notes: "Paper colour coding: light blue = RP bootstrap, purple = task " +
			"scheduling, green = task running, white = unused resources (a " +
			"measure of RP scheduling optimization based on SOMA data).",
		Body: sb.String(),
	}, nil
}
