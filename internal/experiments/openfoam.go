package experiments

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/tau"
	"github.com/hpcobs/gosoma/internal/workload"
)

// OpenFOAMConfig parameterizes the ExaAM/OpenFOAM workflow of §3.1 and
// Table 1.
type OpenFOAMConfig struct {
	// InstancesPerConfig is 1 for the "tuning" run, 20 for "overloaded".
	InstancesPerConfig int
	// AppNodes is 4 (tuning) or 10 (overload); one extra node is always
	// added for the RP agent and SOMA service.
	AppNodes int
	// RankConfigs are the MPI rank counts per task (Table 1: 20,41,82,164).
	RankConfigs []int
	// MonitorIntervalSec is the hardware/RP sampling period (30 s for the
	// Fig. 7 run).
	MonitorIntervalSec float64
	// RanksPerNamespace is the SOMA service split (Table 1: 1).
	RanksPerNamespace int
	// WithTAU enables the TAU plugin (monitors "proc, rp, tau").
	WithTAU bool
	// Seed drives all stochastic models.
	Seed uint64
}

// TuningOpenFOAM returns Table 1's "Tuning" column.
func TuningOpenFOAM() OpenFOAMConfig {
	return OpenFOAMConfig{
		InstancesPerConfig: 1,
		AppNodes:           4,
		RankConfigs:        []int{20, 41, 82, 164},
		MonitorIntervalSec: 30,
		RanksPerNamespace:  1,
		WithTAU:            true,
		Seed:               1,
	}
}

// OverloadOpenFOAM returns Table 1's "Overload" column.
func OverloadOpenFOAM() OpenFOAMConfig {
	cfg := TuningOpenFOAM()
	cfg.InstancesPerConfig = 20
	cfg.AppNodes = 10
	cfg.Seed = 2
	return cfg
}

// OFTaskRecord ties one application task to its configuration and observed
// behaviour (execution time comes from the SOMA workflow namespace, not
// from the simulator's ground truth).
type OFTaskRecord struct {
	UID          string
	Ranks        int
	NodesSpanned int
	Contention   float64
	ExecTime     float64 // from SOMA events (rank_start → rank_stop)
	// GroundTruth is the runtime's own measurement of the same interval —
	// kept so tests can verify the observability path loses nothing.
	GroundTruth float64
	SubmitTime  float64
	StartTime   float64
}

// OpenFOAMRun is a completed workflow with its observability data.
type OpenFOAMRun struct {
	Cfg      OpenFOAMConfig
	Makespan float64
	Tasks    []OFTaskRecord
	Analysis core.Analysis
	Timeline *pilot.Timeline
	Service  *core.Service
	Hosts    []string
}

// Close releases the run's SOMA service.
func (r *OpenFOAMRun) Close() {
	if r.Service != nil {
		r.Service.Close()
	}
}

// ByRanks groups observed execution times by rank configuration (Fig. 4).
func (r *OpenFOAMRun) ByRanks() map[int][]float64 {
	out := map[int][]float64{}
	for _, t := range r.Tasks {
		if t.ExecTime > 0 {
			out[t.Ranks] = append(out[t.Ranks], t.ExecTime)
		}
	}
	return out
}

// BySpan groups execution times of one rank config by the number of nodes
// the ranks landed on (Fig. 6).
func (r *OpenFOAMRun) BySpan(ranks int) map[int][]float64 {
	out := map[int][]float64{}
	for _, t := range r.Tasks {
		if t.Ranks == ranks && t.ExecTime > 0 {
			out[t.NodesSpanned] = append(out[t.NodesSpanned], t.ExecTime)
		}
	}
	return out
}

var openfoamRunSeq struct {
	sync.Mutex
	n int
}

// RunOpenFOAM executes the workflow under simulated time with full SOMA
// monitoring and returns the observability data.
func RunOpenFOAM(cfg OpenFOAMConfig) (*OpenFOAMRun, error) {
	if cfg.InstancesPerConfig < 1 || cfg.AppNodes < 1 || len(cfg.RankConfigs) == 0 {
		return nil, fmt.Errorf("experiments: invalid OpenFOAM config %+v", cfg)
	}
	if cfg.MonitorIntervalSec <= 0 {
		cfg.MonitorIntervalSec = 30
	}
	if cfg.RanksPerNamespace < 1 {
		cfg.RanksPerNamespace = 1
	}
	openfoamRunSeq.Lock()
	openfoamRunSeq.n++
	runID := openfoamRunSeq.n
	openfoamRunSeq.Unlock()

	eng := des.NewEngine()
	rng := stats.NewRNG(cfg.Seed)
	model := workload.DefaultOpenFOAM()

	totalNodes := cfg.AppNodes + 1 // extra node for RP agent + SOMA service
	cluster := platform.NewCluster(totalNodes, platform.Summit())
	batch := platform.NewBatchSystem(cluster)
	sess := pilot.NewSession(eng, batch)
	pl, err := sess.SubmitPilot(pilot.PilotDescription{Nodes: totalNodes, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	agent := pl.Agent
	somaNode := pl.Allocation.Nodes[totalNodes-1]

	// SOMA service, reachable over the in-proc mercury transport so the
	// full client-stub → RPC → instance data path is exercised.
	svc := core.NewService(core.ServiceConfig{
		RanksPerNamespace: cfg.RanksPerNamespace,
		Clock:             eng,
	})
	addr, err := svc.Listen(fmt.Sprintf("inproc://openfoam-run-%d", runID))
	if err != nil {
		return nil, err
	}
	client, err := core.Connect(addr, nil)
	if err != nil {
		svc.Close()
		return nil, err
	}

	// Service task: 4 instances × RanksPerNamespace processes, pinned to
	// the extra node and scheduled before anything else.
	_, err = agent.Submit(pilot.TaskDescription{
		Name: "soma.service", Service: true,
		Ranks: 4 * cfg.RanksPerNamespace, PinNode: somaNode.Name,
		CPUActivity: 0.3,
	})
	if err != nil {
		svc.Close()
		return nil, err
	}
	// RP monitoring client: one per workflow, co-located with the service.
	if _, err := agent.Submit(pilot.TaskDescription{
		Name: "soma.rpmonitor", Service: true, Ranks: 1,
		PinNode: somaNode.Name, CPUActivity: 0.1,
	}); err != nil {
		svc.Close()
		return nil, err
	}
	// The extra node is exclusive to RP+SOMA in these runs: reserve its
	// remaining cores and GPUs so no simulation task lands there.
	if _, err := agent.Submit(pilot.TaskDescription{
		Name: "soma.reserve", Service: true,
		Ranks:   somaNode.Spec.UsableCores() - 4*cfg.RanksPerNamespace - 1,
		PinNode: somaNode.Name, GPUsPerRank: 0, CPUActivity: 0.01,
	}); err != nil {
		svc.Close()
		return nil, err
	}
	// Hardware monitoring client: one reserved core per application node.
	for i := 0; i < cfg.AppNodes; i++ {
		if _, err := agent.Submit(pilot.TaskDescription{
			Name: "soma.hwmonitor", Service: true, Ranks: 1,
			PinNode: pl.Allocation.Nodes[i].Name, CPUActivity: 0.05,
		}); err != nil {
			svc.Close()
			return nil, err
		}
	}

	// Collector daemons.
	rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
		Runtime: eng, Profiler: agent.Profiler(), Pub: client,
		IntervalSec: cfg.MonitorIntervalSec,
	})
	if err != nil {
		svc.Close()
		return nil, err
	}
	stopRP := rpm.Start()
	var stopHW []func()
	for i := 0; i < cfg.AppNodes; i++ {
		node := pl.Allocation.Nodes[i]
		hwm, err := core.NewHWMonitor(core.HWMonitorConfig{
			Runtime: eng,
			Source:  procfs.NewSampler(procfs.NewSyntheticSource(node, eng, cfg.Seed+uint64(i))),
			Pub:     client, IntervalSec: cfg.MonitorIntervalSec,
		})
		if err != nil {
			svc.Close()
			return nil, err
		}
		stopHW = append(stopHW, hwm.Start())
	}

	// TAU plugin: publishes each completed task's per-rank profile to the
	// performance namespace (tau_exec sampling without instrumentation).
	plugin := tau.NewPlugin(func(n *conduit.Node) error {
		return client.Publish(core.NSPerformance, n)
	})

	// Application tasks, in a seeded shuffle of all instances: RP receives
	// the heterogeneous mix at once and its continuous scheduler decides
	// placement, which is what produces the span diversity of Fig. 6.
	var order []int
	for _, ranks := range cfg.RankConfigs {
		for inst := 0; inst < cfg.InstancesPerConfig; inst++ {
			order = append(order, ranks)
		}
	}
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	type taskMeta struct {
		task  *pilot.Task
		ranks int
	}
	var metas []taskMeta
	{
		for idx, ranks := range order {
			idx, ranks := idx, ranks
			td := pilot.TaskDescription{
				Name:        fmt.Sprintf("openfoam.r%d.i%d", ranks, idx),
				Ranks:       ranks,
				CPUActivity: model.CPUActivity(),
				Duration: func(ctx pilot.ExecContext) float64 {
					return model.ExecTime(ranks, workload.Placement{
						NodesSpanned: ctx.Placement.NodesSpanned(),
						Contention:   ctx.Placement.Contention,
						OwnDensity:   ctx.Placement.OwnDensity,
					}, rng)
				},
			}
			if cfg.WithTAU {
				td.OnComplete = func(t *pilot.Task) {
					et := t.ExecTime()
					if et <= 0 {
						return
					}
					breakdown := model.RankBreakdown(ranks, et, rng)
					profs := make([]tau.Profile, 0, len(breakdown))
					hosts := t.Placement().NodeNames()
					if len(hosts) == 0 {
						return
					}
					for i, rp := range breakdown {
						host := hosts[i*len(hosts)/len(breakdown)]
						profs = append(profs, tau.Profile{
							TaskUID: t.UID, Host: host, Rank: rp.Rank, Seconds: rp.Times,
						})
					}
					_ = plugin.Report(profs)
				}
			}
			task, err := agent.Submit(td)
			if err != nil {
				svc.Close()
				return nil, err
			}
			metas = append(metas, taskMeta{task: task, ranks: ranks})
		}
	}

	// Shut monitoring down once the application workload drains.
	var once sync.Once
	agent.OnQuiescent(func() {
		once.Do(func() {
			agent.StopServices()
			stopRP() // runs one final collection, seeing the canceled services
			for _, s := range stopHW {
				s()
			}
		})
	})

	makespan := eng.Run()

	analysis := core.Analysis{Q: core.LocalQuerier{Service: svc}}
	execTimes, err := analysis.ExecTimes()
	if err != nil {
		svc.Close()
		return nil, err
	}
	run := &OpenFOAMRun{
		Cfg:      cfg,
		Makespan: makespan,
		Analysis: analysis,
		Timeline: agent.Timeline(),
		Service:  svc,
	}
	for _, m := range metas {
		sub, _, exec, _ := m.task.Times()
		run.Tasks = append(run.Tasks, OFTaskRecord{
			UID:          m.task.UID,
			Ranks:        m.ranks,
			NodesSpanned: m.task.Placement().NodesSpanned(),
			Contention:   m.task.Placement().Contention,
			ExecTime:     execTimes[m.task.UID],
			GroundTruth:  m.task.ExecTime(),
			SubmitTime:   sub,
			StartTime:    exec,
		})
	}
	run.Hosts, _ = analysis.Hosts()
	client.Close()
	return run, nil
}
