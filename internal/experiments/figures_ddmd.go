package experiments

import (
	"fmt"
	"strings"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/workload"
)

// TuningDDMD returns Table 2's "Tuning" column: 6 phases on 1 pipeline with
// the (cores/sim, cores/train) grid {1,3,7}×{7,3} the paper's Fig. 9 shades.
func TuningDDMD() DDMDConfig {
	return DDMDConfig{
		Phases: 6, Pipelines: 1, AppNodes: 2, SomaNodes: 1,
		PerPhaseSimCores:   []int{1, 3, 7, 1, 3, 7},
		PerPhaseTrainCores: []int{7, 7, 7, 3, 3, 3},
		NumTrainTasks:      1,
		RanksPerNamespace:  1,
		MonitorIntervalSec: 60,
		Mode:               ModeExclusive,
		Seed:               11,
	}
}

// AdaptiveDDMD returns Table 2's "Adaptive" column: 4 phases with the
// training-task count set a priori to 1, 2, 4, 6.
func AdaptiveDDMD() DDMDConfig {
	return DDMDConfig{
		Phases: 4, Pipelines: 1, AppNodes: 2, SomaNodes: 1,
		CoresPerSim: 6, CoresPerTrain: 1,
		PerPhaseTrainTasks: []int{1, 2, 4, 6},
		RanksPerNamespace:  1,
		MonitorIntervalSec: 60,
		Mode:               ModeExclusive,
		Seed:               13,
	}
}

// Fig9 reproduces the DDMD tuning study: per-phase CPU utilization while
// the cores assigned to simulation and training tasks vary.
func Fig9() (Report, error) {
	cfg := TuningDDMD()
	run, err := RunDDMD(cfg)
	if err != nil {
		return Report{}, err
	}
	defer run.Close()

	// Attribute utilization samples to phases via the phase boundaries.
	hosts, err := run.Analysis.Hosts()
	if err != nil {
		return Report{}, err
	}
	phaseUtil := make([][]float64, cfg.Phases)
	for _, host := range hosts[:min(len(hosts), cfg.AppNodes)] {
		series, err := run.Analysis.CPUUtilSeries(host)
		if err != nil {
			return Report{}, err
		}
		for _, p := range series {
			for ph := 0; ph < cfg.Phases; ph++ {
				b := run.PhaseBounds[ph]
				if p.Time >= b[0] && p.Time <= b[1] {
					phaseUtil[ph] = append(phaseUtil[ph], p.Util)
					break
				}
			}
		}
	}

	var rows [][]string
	for ph := 0; ph < cfg.Phases; ph++ {
		util := stats.Mean(phaseUtil[ph])
		simT := stats.Mean(run.StageTimes[ph][workload.StageSimulation])
		trainT := stats.Mean(run.StageTimes[ph][workload.StageTraining])
		rows = append(rows, []string{
			fmt.Sprintf("phase %d", ph+1),
			fmt.Sprintf("%d", cfg.PerPhaseSimCores[ph]),
			fmt.Sprintf("%d", cfg.PerPhaseTrainCores[ph]),
			fmt.Sprintf("%.1f%%", util),
			fmt.Sprintf("%.0f", simT),
			fmt.Sprintf("%.0f", trainT),
		})
	}
	var sb strings.Builder
	sb.WriteString(table([]string{"phase", "cores/sim", "cores/train",
		"mean CPU util", "sim time (s)", "train time (s)"}, rows))
	allUtil := 0.0
	n := 0
	for _, u := range phaseUtil {
		allUtil += stats.Sum(u)
		n += len(u)
	}
	if n > 0 {
		fmt.Fprintf(&sb, "\nmean CPU utilization across all phases: %.1f%% — remains low; "+
			"the work is on the GPU\n", allUtil/float64(n))
	}
	return Report{
		ID:    "fig9",
		Title: "DDMD mini-app tuning: CPU utilization vs cores per task",
		Notes: "Paper: even when changing the cores per task, CPU utilization " +
			"remains low because the simulation and training stages are " +
			"GPU-bound — motivating parallelized training on the freed GPUs.",
		Body: sb.String(),
	}, nil
}

// Fig10 reproduces Scaling A: 64 pipelines with SOMA-rank:pipeline ratios
// 1:1 to 1:4 (64/32/16 ranks), shared vs exclusive.
func Fig10() (Report, error) {
	var rows [][]string
	for _, cfg := range ScalingAConfigs() {
		run, err := RunDDMD(cfg)
		if err != nil {
			return Report{}, err
		}
		label := fmt.Sprintf("%d ranks/ns, %-9s", cfg.RanksPerNamespace, cfg.Mode)
		rows = append(rows, boxRow(label, stats.Summarize(run.PipelineTimes)))
		run.Close()
	}
	return Report{
		ID:    "fig10",
		Title: "Scaling A: 64-pipeline runtimes vs SOMA rank ratio (seconds)",
		Notes: "Paper: GPU oversubscription causes more variability and lower " +
			"times in the shared configuration (RP can use free cores/GPUs on " +
			"the SOMA nodes), while the SOMA-rank:pipeline ratio has little " +
			"effect.",
		Body: table(boxHeader, rows),
	}, nil
}

// Fig11Row is one (scale, mode) cell of the Scaling B study.
type Fig11Row struct {
	AppNodes    int
	Mode        SOMAMode
	IntervalSec float64
	Summary     stats.Summary
	// OverheadPct is the mean runtime change vs the same-scale "none"
	// baseline (positive = slower).
	OverheadPct float64
}

// RunFig11 executes the Scaling B sweep up to maxNodes (0 = 512) and
// returns the per-configuration rows.
func RunFig11(maxNodes int) ([]Fig11Row, error) {
	var rows []Fig11Row
	baselines := map[int]float64{}
	for _, cfg := range ScalingBConfigs(maxNodes) {
		run, err := RunDDMD(cfg)
		if err != nil {
			return nil, err
		}
		s := stats.Summarize(run.PipelineTimes)
		row := Fig11Row{
			AppNodes: cfg.AppNodes, Mode: cfg.Mode,
			IntervalSec: cfg.MonitorIntervalSec, Summary: s,
		}
		if cfg.Mode == ModeNone {
			baselines[cfg.AppNodes] = s.Mean
		}
		if base, ok := baselines[cfg.AppNodes]; ok && base > 0 {
			row.OverheadPct = (s.Mean - base) / base * 100
		}
		rows = append(rows, row)
		run.Close()
	}
	return rows, nil
}

// Fig11 reproduces Scaling B: the distribution of per-pipeline runtimes at
// 64–512 application nodes under none/shared/exclusive monitoring at 60 s,
// plus the 10 s "frequent" variants, with overhead relative to baseline.
func Fig11(maxNodes int) (Report, error) {
	rows, err := RunFig11(maxNodes)
	if err != nil {
		return Report{}, err
	}
	var tbl [][]string
	for _, r := range rows {
		label := string(r.Mode)
		if r.IntervalSec == 10 {
			label = "frequent-" + label
		}
		over := "baseline"
		if r.Mode != ModeNone {
			over = fmt.Sprintf("%+.1f%%", r.OverheadPct)
		}
		tbl = append(tbl, []string{
			fmt.Sprintf("%d", r.AppNodes), label,
			fmt.Sprintf("%.0f", r.Summary.Median),
			fmt.Sprintf("%.0f", r.Summary.Mean),
			fmt.Sprintf("%.0f", r.Summary.Std),
			fmt.Sprintf("%.0f", r.Summary.Max),
			over,
		})
	}
	return Report{
		ID:    "fig11",
		Title: "Scaling B: per-pipeline runtime distribution (seconds)",
		Notes: "Paper: frequent-exclusive costs ≈1.4/3.4/3.2/4.6 % vs baseline " +
			"at 64/128/256/512 nodes; shared runs faster at small scale " +
			"(−6.5/−3.8/−1.1 %) and crosses to +1.8 % at 512 nodes, with higher " +
			"outliers from opportunistic placement.",
		Body: table([]string{"nodes", "config", "median", "mean", "std", "max",
			"vs none"}, tbl),
	}, nil
}

// AdaptiveReport reproduces the §4.3 adaptive study: SOMA analysis between
// phases identifies free resources and suggests the next phase's training
// parallelism, compared with the a-priori values the paper used.
func AdaptiveReport() (Report, error) {
	cfg := AdaptiveDDMD()
	advisor := core.NewAdvisor()
	var advice []AdviceRecord

	cfg.PhaseHook = func(phase int, analysis core.Analysis) {
		if analysis.Q == nil {
			return
		}
		util, err := analysis.MeanClusterUtil()
		if err != nil {
			return
		}
		freeGPUs := cfg.FreeGPUsOnSomaNodes()
		current := cfg.PerPhaseTrainTasks[phase]
		rec := AdviceRecord{
			Phase:           phase,
			MeanUtilPct:     util,
			FreeGPUs:        freeGPUs,
			CurrentTrain:    current,
			SuggestedTrain:  advisor.SuggestTrainTasks(current, util, freeGPUs),
			CurrentSimCores: cfg.CoresPerSim,
			SuggestedCores:  advisor.SuggestCoresPerTask(cfg.CoresPerSim, util),
		}
		advice = append(advice, rec)
	}
	run, err := RunDDMD(cfg)
	if err != nil {
		return Report{}, err
	}
	defer run.Close()
	run.Advice = advice

	var rows [][]string
	for ph := 0; ph < cfg.Phases; ph++ {
		trainT := stats.Mean(run.StageTimes[ph][workload.StageTraining])
		aPriori := cfg.PerPhaseTrainTasks[ph]
		util, free := 0.0, cfg.FreeGPUsOnSomaNodes()
		sugTrain, sugCores := aPriori, cfg.CoresPerSim
		if ph < len(advice) {
			util = advice[ph].MeanUtilPct
			sugTrain = advice[ph].SuggestedTrain
			sugCores = advice[ph].SuggestedCores
		}
		rows = append(rows, []string{
			fmt.Sprintf("phase %d", ph+1),
			fmt.Sprintf("%d", aPriori),
			fmt.Sprintf("%.0f", trainT),
			fmt.Sprintf("%.1f%%", util),
			fmt.Sprintf("%d", free),
			fmt.Sprintf("%d", sugTrain),
			fmt.Sprintf("%d", sugCores),
		})
	}
	var sb strings.Builder
	sb.WriteString(table([]string{"phase", "train tasks (a priori)",
		"train time (s)", "observed CPU util", "free GPUs seen",
		"advisor: train tasks", "advisor: cores/sim"}, rows))
	fmt.Fprintf(&sb, "\nparallel training shrinks the training stage at an "+
		"MPI_Reduce cost; the advisor reaches the same fan-out the paper set "+
		"a priori, from SOMA data alone\n")
	return Report{
		ID:    "adaptive",
		Title: "Adaptive study: between-phase SOMA analysis (4 phases)",
		Notes: "Paper §4.3: EnTK cannot yet adapt mid-run, so SOMA analysis " +
			"runs between phases to inform the next phase's configuration; " +
			"training-task counts were set a priori to 1, 2, 4, 6.",
		Body: sb.String(),
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
