package experiments

import (
	"testing"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/workload"
)

func TestDDMDBaselinePhaseStructure(t *testing.T) {
	run, err := RunDDMD(DDMDConfig{
		Phases: 2, Pipelines: 1, AppNodes: 2, SomaNodes: 1,
		CoresPerSim: 3, CoresPerTrain: 7, NumTrainTasks: 1,
		Mode: ModeExclusive, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	for ph := 0; ph < 2; ph++ {
		if n := len(run.StageTimes[ph][workload.StageSimulation]); n != 12 {
			t.Fatalf("phase %d sim tasks = %d want 12", ph, n)
		}
		for _, st := range []workload.DDMDStage{
			workload.StageTraining, workload.StageSelection, workload.StageAgent,
		} {
			if n := len(run.StageTimes[ph][st]); n != 1 {
				t.Fatalf("phase %d stage %s tasks = %d want 1", ph, st, n)
			}
		}
		if run.PhaseBounds[ph][1] <= run.PhaseBounds[ph][0] {
			t.Fatalf("phase %d bounds inverted: %v", ph, run.PhaseBounds[ph])
		}
	}
	if run.PhaseBounds[1][0] < run.PhaseBounds[0][1] {
		t.Fatal("phase 1 started before phase 0 finished")
	}
	if len(run.PipelineTimes) != 1 || run.PipelineTimes[0] <= 0 {
		t.Fatalf("pipeline times = %v", run.PipelineTimes)
	}
}

// TestFig9Shape: CPU utilization stays low in every tuning phase even as
// cores per task vary — the workload is GPU-bound.
func TestFig9Shape(t *testing.T) {
	run, err := RunDDMD(TuningDDMD())
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	hosts, err := run.Analysis.Hosts()
	if err != nil || len(hosts) == 0 {
		t.Fatalf("hosts = %v, %v", hosts, err)
	}
	for ph := 0; ph < run.Cfg.Phases; ph++ {
		var utils []float64
		for _, host := range hosts[:run.Cfg.AppNodes] {
			series, _ := run.Analysis.CPUUtilSeries(host)
			for _, p := range series {
				if p.Time >= run.PhaseBounds[ph][0] && p.Time <= run.PhaseBounds[ph][1] {
					utils = append(utils, p.Util)
				}
			}
		}
		if len(utils) == 0 {
			t.Fatalf("phase %d has no utilization samples", ph)
		}
		if m := stats.Mean(utils); m > 35 {
			t.Errorf("phase %d mean CPU util %.1f%%, want low (GPU-bound)", ph, m)
		}
	}
	// More cores per sim task should still shorten the sim stage slightly.
	t1 := stats.Mean(run.StageTimes[0][workload.StageSimulation]) // 1 core
	t7 := stats.Mean(run.StageTimes[2][workload.StageSimulation]) // 7 cores
	if t7 >= t1 {
		t.Errorf("sim stage with 7 cores (%.1f) should not be slower than 1 core (%.1f)", t7, t1)
	}
	if (t1-t7)/t1 > 0.2 {
		t.Errorf("core effect %.0f%% too large — should be minimal", (t1-t7)/t1*100)
	}
}

// TestScalingASharedVsExclusive: shared lets RP use the SOMA nodes' free
// GPUs, lowering pipeline runtimes; the SOMA-rank ratio has little effect.
func TestScalingASharedVsExclusive(t *testing.T) {
	small := func(mode SOMAMode, ranks int) stats.Summary {
		run, err := RunDDMD(DDMDConfig{
			Phases: 1, Pipelines: 16, AppNodes: 16, SomaNodes: 1,
			CoresPerSim: 3, CoresPerTrain: 7, NumTrainTasks: 1,
			RanksPerNamespace: ranks, Mode: mode, Seed: 31, CompactHW: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer run.Close()
		if len(run.PipelineTimes) != 16 {
			t.Fatalf("pipelines = %d", len(run.PipelineTimes))
		}
		return stats.Summarize(run.PipelineTimes)
	}
	sh := small(ModeShared, 16)
	ex := small(ModeExclusive, 16)
	if sh.Median >= ex.Median {
		t.Errorf("shared median %.1f should beat exclusive %.1f", sh.Median, ex.Median)
	}
	// Ratio effect is weak: 4:1 vs 1:1 ranks changes exclusive medians < 5%.
	ex4 := small(ModeExclusive, 4)
	rel := (ex4.Median - ex.Median) / ex.Median
	if rel < -0.05 || rel > 0.05 {
		t.Errorf("rank-ratio effect %.1f%% too strong", rel*100)
	}
}

// TestFig11Shape runs the Scaling B sweep at reduced scale (64 and 128
// nodes) and pins the overhead ordering the paper reports.
func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	rows, err := RunFig11(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d want 10", len(rows))
	}
	get := func(nodes int, mode SOMAMode, interval float64) Fig11Row {
		for _, r := range rows {
			if r.AppNodes == nodes && r.Mode == mode && r.IntervalSec == interval {
				return r
			}
		}
		t.Fatalf("missing row %d/%s/%v", nodes, mode, interval)
		return Fig11Row{}
	}
	for _, nodes := range []int{64, 128} {
		freqEx := get(nodes, ModeExclusive, 10)
		ex := get(nodes, ModeExclusive, 60)
		sh := get(nodes, ModeShared, 60)
		// Frequent monitoring costs more than 60 s monitoring.
		if freqEx.OverheadPct <= ex.OverheadPct {
			t.Errorf("%d nodes: frequent-exclusive %.2f%% should exceed exclusive %.2f%%",
				nodes, freqEx.OverheadPct, ex.OverheadPct)
		}
		// Exclusive overhead is small at 60 s.
		if ex.OverheadPct < -0.5 || ex.OverheadPct > 2 {
			t.Errorf("%d nodes: exclusive overhead %.2f%% out of expected band", nodes, ex.OverheadPct)
		}
		// Shared runs faster than baseline at small scale.
		if sh.OverheadPct >= 0 {
			t.Errorf("%d nodes: shared overhead %.2f%%, want negative (speedup)", nodes, sh.OverheadPct)
		}
	}
	// Frequent-exclusive overhead grows with node count (paper: 1.4% → 4.6%).
	if get(128, ModeExclusive, 10).OverheadPct <= get(64, ModeExclusive, 10).OverheadPct {
		t.Error("frequent-exclusive overhead should grow with scale")
	}
}

// TestAdaptiveAdvice: between-phase SOMA analysis sees low CPU utilization
// and free GPUs, and recommends fanning training out — the same direction
// the paper's a-priori schedule takes.
func TestAdaptiveAdvice(t *testing.T) {
	cfg := AdaptiveDDMD()
	advisor := core.NewAdvisor()
	var advice []AdviceRecord
	cfg.PhaseHook = func(phase int, analysis core.Analysis) {
		util, err := analysis.MeanClusterUtil()
		if err != nil {
			t.Errorf("phase %d analysis: %v", phase, err)
			return
		}
		current := cfg.PerPhaseTrainTasks[phase]
		advice = append(advice, AdviceRecord{
			Phase: phase, MeanUtilPct: util,
			CurrentTrain:   current,
			SuggestedTrain: advisor.SuggestTrainTasks(current, util, cfg.FreeGPUsOnSomaNodes()),
		})
	}
	run, err := RunDDMD(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if len(advice) != cfg.Phases {
		t.Fatalf("advice records = %d want %d", len(advice), cfg.Phases)
	}
	for _, a := range advice {
		if a.MeanUtilPct > 35 {
			t.Errorf("phase %d util %.1f%% should be low", a.Phase, a.MeanUtilPct)
		}
		if a.SuggestedTrain <= a.CurrentTrain {
			t.Errorf("phase %d: advisor should fan out training (%d → %d)",
				a.Phase, a.CurrentTrain, a.SuggestedTrain)
		}
	}
	// Parallel training shrinks the training stage across phases 1→4.
	tr1 := stats.Mean(run.StageTimes[0][workload.StageTraining])
	tr4 := stats.Mean(run.StageTimes[3][workload.StageTraining])
	if tr4 >= tr1 {
		t.Errorf("training with 6 tasks (%.1f s) should beat 1 task (%.1f s)", tr4, tr1)
	}
}

func TestDDMDNoneModeHasNoService(t *testing.T) {
	run, err := RunDDMD(DDMDConfig{
		Phases: 1, Pipelines: 2, AppNodes: 2,
		Mode: ModeNone, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.Service != nil {
		t.Fatal("none mode should not start a SOMA service")
	}
	if len(run.PipelineTimes) != 2 {
		t.Fatalf("pipeline times = %v", run.PipelineTimes)
	}
}

func TestInvalidDDMDConfig(t *testing.T) {
	if _, err := RunDDMD(DDMDConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
