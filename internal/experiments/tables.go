package experiments

import "fmt"

// Table1 reproduces the paper's Table 1: the OpenFOAM experiment summary.
// The rows are the configuration this harness actually runs for the
// Fig. 4–8 reproductions.
func Table1() Report {
	tuning, overload := TuningOpenFOAM(), OverloadOpenFOAM()
	body := table(
		[]string{"Experiment", "Tuning", "Overload"},
		[][]string{
			{"Number of Tasks",
				fmt.Sprintf("%d", tuning.InstancesPerConfig*len(tuning.RankConfigs)),
				fmt.Sprintf("%d", overload.InstancesPerConfig*len(overload.RankConfigs))},
			{"Number of Nodes",
				fmt.Sprintf("%d", tuning.AppNodes),
				fmt.Sprintf("%d", overload.AppNodes)},
			{"Number of MPI Ranks", "20, 41, 82, 164", "20, 41, 82, 164"},
			{"Monitors", "proc, rp, tau", "proc, rp, tau"},
			{"SOMA Ranks Per Namespace",
				fmt.Sprintf("%d", tuning.RanksPerNamespace),
				fmt.Sprintf("%d", overload.RanksPerNamespace)},
		})
	return Report{
		ID:    "table1",
		Title: "OpenFOAM Experiment Summary",
		Notes: "Both runs allocate one extra node reserved for the RADICAL-Pilot " +
			"agent and the SOMA service, as in the paper (§3.1).",
		Body: body,
	}
}

// ScalingAConfigs returns the Fig. 10 grid: 64 pipelines on 64 application
// nodes with 1/2/4 SOMA nodes (16/32/64 SOMA ranks per namespace), in both
// shared and exclusive configurations.
func ScalingAConfigs() []DDMDConfig {
	var out []DDMDConfig
	ranks := []int{16, 32, 64}
	nodes := []int{1, 2, 4}
	for i := range ranks {
		for _, mode := range []SOMAMode{ModeShared, ModeExclusive} {
			out = append(out, DDMDConfig{
				Phases: 1, Pipelines: 64, AppNodes: 64, SomaNodes: nodes[i],
				CoresPerSim: 3, CoresPerTrain: 7, NumTrainTasks: 1,
				RanksPerNamespace: ranks[i], MonitorIntervalSec: 60,
				Mode: mode, Seed: uint64(100 + i), CompactHW: true,
			})
		}
	}
	return out
}

// ScalingBConfigs returns the Fig. 11 grid: 64–512 pipelines/nodes at a 1:1
// SOMA-rank:pipeline ratio, in none/shared/exclusive plus the 10-second
// "frequent" variants. maxNodes (0 = 512) truncates the sweep for quick
// runs.
func ScalingBConfigs(maxNodes int) []DDMDConfig {
	if maxNodes <= 0 {
		maxNodes = 512
	}
	scales := []struct{ app, soma int }{{64, 4}, {128, 7}, {256, 13}, {512, 25}}
	var out []DDMDConfig
	for si, sc := range scales {
		if sc.app > maxNodes {
			break
		}
		mk := func(mode SOMAMode, interval float64) DDMDConfig {
			soma := sc.soma
			if mode == ModeNone {
				soma = 0
			}
			return DDMDConfig{
				Phases: 1, Pipelines: sc.app, AppNodes: sc.app, SomaNodes: soma,
				CoresPerSim: 3, CoresPerTrain: 7, NumTrainTasks: 1,
				RanksPerNamespace: sc.app, MonitorIntervalSec: interval,
				Mode: mode, Seed: uint64(200 + si), CompactHW: true,
			}
		}
		out = append(out,
			mk(ModeNone, 60),
			mk(ModeShared, 60),
			mk(ModeExclusive, 60),
			mk(ModeShared, 10),
			mk(ModeExclusive, 10),
		)
	}
	return out
}

// Table2 reproduces the paper's Table 2: the DeepDriveMD mini-app
// experiment summary.
func Table2() Report {
	body := table(
		[]string{"Experiment", "Phases", "Pipelines", "App Nodes", "SOMA Nodes",
			"Cores/Sim", "Train Tasks", "Cores/Train", "Ranks/NS", "Freq (s)"},
		[][]string{
			{"Tuning", "6", "1", "2", "1", "1,3,7", "1", "1,3,7", "1", "60"},
			{"Adaptive", "4", "1", "2", "1", "6", "1,2,4,6", "1", "1", "60"},
			{"Scaling A", "1", "64", "64", "1,2,4", "3", "1", "7", "16,32,64", "60"},
			{"Scaling B", "1", "64,128,256,512", "64,128,256,512", "4,7,13,25",
				"3", "1", "7", "64,128,256,512", "60,10"},
		})
	return Report{
		ID:    "table2",
		Title: "DeepDriveMD Mini-app Experiment Summary",
		Notes: "The baseline workflow per phase is 12 simulation tasks and one " +
			"task each for training, selection and agent; sim/train/agent use " +
			"one GPU per task, selection is CPU-only (§3.2).",
		Body: body,
	}
}
