package experiments

import (
	"strings"
	"testing"
)

// TestAllReportsRender regenerates every figure report once and checks the
// rendered body carries the expected structure — the somabench smoke test.
func TestAllReportsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("report regeneration in -short mode")
	}
	cases := []struct {
		id   string
		run  func() (Report, error)
		want []string
	}{
		{"fig4", Fig4, []string{"20 ranks", "164 ranks", "advisor suggestion"}},
		{"fig5", Fig5, []string{"MPI_Recv", "MPI_Waitall", "load imbalance"}},
		{"fig6", Fig6, []string{"20 ranks on 1 node", "41 ranks on"}},
		{"fig7", Fig7, []string{"cn0000", "task starts", "util %"}},
		{"fig8", Fig8, []string{"bootstrap", "schedule", "run", "idle", "core "}},
		{"fig9", Fig9, []string{"cores/sim", "mean CPU util", "phase 6"}},
		{"fig10", Fig10, []string{"shared", "exclusive", "16 ranks/ns"}},
		{"adaptive", AdaptiveReport, []string{"advisor: train tasks", "phase 4"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			rep, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != tc.id {
				t.Errorf("report id = %q", rep.ID)
			}
			out := rep.String()
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q:\n%s", tc.id, want, out)
				}
			}
		})
	}
}

func TestFig11ReportTruncated(t *testing.T) {
	rep, err := Fig11(64)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"baseline", "frequent-exclusive", "vs none"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig11 output missing %q", want)
		}
	}
	// The notes quote the paper's 64-512 sweep, so check the data rows only.
	for _, line := range strings.Split(rep.Body, "\n") {
		if strings.HasPrefix(line, "128") {
			t.Errorf("max-nodes 64 should exclude the 128-node rows: %q", line)
		}
	}
}

func TestScalingBConfigsTruncation(t *testing.T) {
	if got := len(ScalingBConfigs(0)); got != 20 {
		t.Fatalf("full sweep = %d configs, want 20", got)
	}
	if got := len(ScalingBConfigs(128)); got != 10 {
		t.Fatalf("128-node sweep = %d configs, want 10", got)
	}
	for _, cfg := range ScalingBConfigs(0) {
		if cfg.Mode == ModeNone && cfg.SomaNodes != 0 {
			t.Fatal("none mode must not allocate SOMA nodes")
		}
		if cfg.RanksPerNamespace != cfg.Pipelines {
			t.Fatal("Scaling B keeps the rank:pipeline ratio at 1:1")
		}
	}
}
