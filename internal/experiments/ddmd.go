package experiments

import (
	"fmt"
	"sync"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/entk"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/workload"
)

// SOMAMode selects how SOMA's nodes relate to the application (Fig. 10/11).
type SOMAMode string

// The three configurations of the scaling experiments.
const (
	// ModeNone: no SOMA nodes, no monitoring — the baseline.
	ModeNone SOMAMode = "none"
	// ModeShared: SOMA nodes exist but RP may schedule application tasks
	// on their free cores and GPUs.
	ModeShared SOMAMode = "shared"
	// ModeExclusive: SOMA nodes are reserved for SOMA only.
	ModeExclusive SOMAMode = "exclusive"
)

// DDMDConfig parameterizes a DeepDriveMD mini-app workflow (§3.2, Table 2).
type DDMDConfig struct {
	Phases    int
	Pipelines int
	AppNodes  int
	SomaNodes int
	// CoresPerSim / CoresPerTrain are per-task CPU core counts. PerPhase
	// overrides (for the tuning study) are applied per phase index when
	// non-nil.
	CoresPerSim        int
	CoresPerTrain      int
	PerPhaseSimCores   []int
	PerPhaseTrainCores []int
	NumTrainTasks      int
	PerPhaseTrainTasks []int
	RanksPerNamespace  int
	MonitorIntervalSec float64
	Mode               SOMAMode
	Seed               uint64
	// CompactHW drops per-core stat lines from hardware samples — used by
	// the large scaling runs to keep the hardware namespace lean.
	CompactHW bool
	// PhaseHook runs between phases (after pipeline 0's agent stage
	// completes) — the SOMA-analysis insertion point of the adaptive
	// experiment. It receives the phase index just finished and a live
	// Analysis over the run's SOMA service (zero-valued when Mode is
	// ModeNone).
	PhaseHook func(phase int, analysis core.Analysis)
}

// DDMDRun holds a completed mini-app workflow and its observability data.
type DDMDRun struct {
	Cfg           DDMDConfig
	Makespan      float64
	PipelineTimes []float64 // per-pipeline wall times (Figs. 10, 11)
	// StageTimes[phase][stage] aggregates task execution times (Fig. 9).
	StageTimes [][4][]float64
	// PhaseBounds[p] = [start, end] of phase p (pipeline 0), for attributing
	// utilization samples to phases in the tuning study.
	PhaseBounds [][2]float64
	Analysis    core.Analysis
	Service     *core.Service
	Advice      []AdviceRecord
}

// AdviceRecord is one between-phase advisor consultation.
type AdviceRecord struct {
	Phase           int
	MeanUtilPct     float64
	FreeGPUs        int
	CurrentTrain    int
	SuggestedTrain  int
	SuggestedCores  int
	CurrentSimCores int
}

// Close releases the run's SOMA service.
func (r *DDMDRun) Close() {
	if r.Service != nil {
		r.Service.Close()
	}
}

var ddmdRunSeq struct {
	sync.Mutex
	n int
}

// RunDDMD executes the mini-app workflow in simulated time.
func RunDDMD(cfg DDMDConfig) (*DDMDRun, error) {
	if cfg.Phases < 1 || cfg.Pipelines < 1 || cfg.AppNodes < 1 {
		return nil, fmt.Errorf("experiments: invalid DDMD config %+v", cfg)
	}
	if cfg.MonitorIntervalSec <= 0 {
		cfg.MonitorIntervalSec = 60
	}
	if cfg.RanksPerNamespace < 1 {
		cfg.RanksPerNamespace = 1
	}
	if cfg.NumTrainTasks < 1 {
		cfg.NumTrainTasks = 1
	}
	if cfg.CoresPerSim < 1 {
		cfg.CoresPerSim = 1
	}
	if cfg.CoresPerTrain < 1 {
		cfg.CoresPerTrain = 1
	}
	if cfg.Mode == "" {
		cfg.Mode = ModeExclusive
	}
	if cfg.Mode == ModeNone {
		cfg.SomaNodes = 0
	}
	ddmdRunSeq.Lock()
	ddmdRunSeq.n++
	runID := ddmdRunSeq.n
	ddmdRunSeq.Unlock()

	eng := des.NewEngine()
	rng := stats.NewRNG(cfg.Seed)
	model := workload.DefaultDDMD()

	totalNodes := cfg.AppNodes + cfg.SomaNodes
	cluster := platform.NewCluster(totalNodes, platform.Summit())
	batch := platform.NewBatchSystem(cluster)
	sess := pilot.NewSession(eng, batch)

	// Monitoring overhead: applied as a task slowdown when monitoring is
	// active, per the calibrated model (Fig. 11's mechanism).
	slowdown := 1.0
	if cfg.Mode != ModeNone {
		ov := workload.DefaultOverhead()
		perRank := float64(cfg.Pipelines) / float64(cfg.RanksPerNamespace)
		slowdown = ov.SlowdownFactor(cfg.AppNodes, cfg.MonitorIntervalSec, perRank)
	}

	pl, err := sess.SubmitPilot(pilot.PilotDescription{
		Nodes: totalNodes, Seed: cfg.Seed, Slowdown: slowdown,
	})
	if err != nil {
		return nil, err
	}
	agent := pl.Agent

	var svc *core.Service
	var client *core.Client
	var stopMonitors func()
	if cfg.Mode != ModeNone {
		svc = core.NewService(core.ServiceConfig{
			RanksPerNamespace: cfg.RanksPerNamespace,
			Clock:             eng,
		})
		addr, err := svc.Listen(fmt.Sprintf("inproc://ddmd-run-%d", runID))
		if err != nil {
			return nil, err
		}
		client, err = core.Connect(addr, nil)
		if err != nil {
			svc.Close()
			return nil, err
		}

		// SOMA service ranks, split across the dedicated SOMA nodes (the
		// last SomaNodes nodes of the allocation). Only the workflow and
		// hardware namespaces are active in the DDMD runs, so two instances
		// worth of ranks are placed.
		totalRanks := 2 * cfg.RanksPerNamespace
		perNode := (totalRanks + cfg.SomaNodes - 1) / cfg.SomaNodes
		for i := 0; i < cfg.SomaNodes; i++ {
			node := pl.Allocation.Nodes[cfg.AppNodes+i]
			ranks := perNode
			// In exclusive mode the GPU-reserve task needs one core per GPU
			// on the same node; never let service ranks crowd it out.
			maxRanks := node.Spec.UsableCores()
			if cfg.Mode == ModeExclusive {
				maxRanks -= node.Spec.GPUs
			}
			if ranks > maxRanks {
				ranks = maxRanks
			}
			if _, err := agent.Submit(pilot.TaskDescription{
				Name: fmt.Sprintf("soma.service.%d", i), Service: true,
				Ranks: ranks, PinNode: node.Name, CPUActivity: 0.3,
			}); err != nil {
				svc.Close()
				return nil, err
			}
			if cfg.Mode == ModeExclusive {
				// Reserve the node's GPUs (one 6-rank task, each rank
				// holding a core and a GPU) and its remaining cores, so RP
				// cannot place application tasks there.
				if _, err := agent.Submit(pilot.TaskDescription{
					Name: fmt.Sprintf("soma.reserve.gpu.%d", i), Service: true,
					Ranks: node.Spec.GPUs, GPUsPerRank: 1, PinNode: node.Name,
					CPUActivity: 0.01,
				}); err != nil {
					svc.Close()
					return nil, err
				}
				if rest := node.Spec.UsableCores() - ranks - node.Spec.GPUs; rest > 0 {
					if _, err := agent.Submit(pilot.TaskDescription{
						Name: fmt.Sprintf("soma.reserve.%d", i), Service: true,
						Ranks: rest, PinNode: node.Name, CPUActivity: 0.01,
					}); err != nil {
						svc.Close()
						return nil, err
					}
				}
			}
		}

		// RP monitor daemon (one per workflow) + per-node hardware monitors.
		rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
			Runtime: eng, Profiler: agent.Profiler(), Pub: client,
			IntervalSec: cfg.MonitorIntervalSec,
		})
		if err != nil {
			svc.Close()
			return nil, err
		}
		stopRP := rpm.Start()
		var stopHW []func()
		for i := 0; i < totalNodes; i++ {
			node := pl.Allocation.Nodes[i]
			src := procfs.NewSyntheticSource(node, eng, cfg.Seed+uint64(i))
			src.SetCompact(cfg.CompactHW)
			hwm, err := core.NewHWMonitor(core.HWMonitorConfig{
				Runtime: eng,
				Source:  procfs.NewSampler(src),
				Pub:     client, IntervalSec: cfg.MonitorIntervalSec,
			})
			if err != nil {
				svc.Close()
				return nil, err
			}
			stopHW = append(stopHW, hwm.Start())
		}
		stopMonitors = func() {
			agent.StopServices()
			stopRP()
			for _, s := range stopHW {
				s()
			}
		}
	} else {
		stopMonitors = func() { agent.StopServices() }
	}

	run := &DDMDRun{Cfg: cfg, Service: svc}
	run.StageTimes = make([][4][]float64, cfg.Phases)
	run.PhaseBounds = make([][2]float64, cfg.Phases)
	if svc != nil {
		run.Analysis = core.Analysis{Q: core.LocalQuerier{Service: svc}}
	}

	phaseParam := func(per []int, def, phase int) int {
		if phase < len(per) && per[phase] > 0 {
			return per[phase]
		}
		return def
	}

	// Build m pipelines × n phases × 4 stages.
	var mu sync.Mutex
	pipeStart := make([]float64, cfg.Pipelines)
	pipeEnd := make([]float64, cfg.Pipelines)
	ov := workload.DefaultOverhead()
	var pipelines []*entk.Pipeline
	for pi := 0; pi < cfg.Pipelines; pi++ {
		pi := pi
		// Shared mode lets RP place opportunistically, which occasionally
		// yields an inefficient placement that delays a pipeline (§4.3).
		placementFactor := 1.0
		if cfg.Mode == ModeShared {
			placementFactor = ov.SharedPlacementFactor(cfg.AppNodes, rng)
		}
		p := &entk.Pipeline{Name: fmt.Sprintf("pipe%03d", pi)}
		for ph := 0; ph < cfg.Phases; ph++ {
			ph := ph
			simCores := phaseParam(cfg.PerPhaseSimCores, cfg.CoresPerSim, ph)
			trainCores := phaseParam(cfg.PerPhaseTrainCores, cfg.CoresPerTrain, ph)
			trainTasks := phaseParam(cfg.PerPhaseTrainTasks, cfg.NumTrainTasks, ph)
			for _, stage := range []workload.DDMDStage{
				workload.StageSimulation, workload.StageTraining,
				workload.StageSelection, workload.StageAgent,
			} {
				stage := stage
				count := model.TaskCount(stage, trainTasks)
				cores := 1
				switch stage {
				case workload.StageSimulation:
					cores = simCores
				case workload.StageTraining:
					cores = trainCores
				}
				gpus := 0
				if model.UsesGPU(stage) {
					gpus = model.GPUsPerTask
				}
				var tds []pilot.TaskDescription
				for k := 0; k < count; k++ {
					tds = append(tds, pilot.TaskDescription{
						Name:         fmt.Sprintf("p%03d.ph%d.%s.%d", pi, ph, stage, k),
						Ranks:        1,
						CoresPerRank: cores,
						GPUsPerRank:  gpus,
						CPUActivity:  model.CPUActivity(stage),
						Duration: func(pilot.ExecContext) float64 {
							return model.StageTime(stage, cores, trainTasks, rng) * placementFactor
						},
					})
				}
				es := &entk.Stage{Name: fmt.Sprintf("ph%d:%s", ph, stage), Tasks: tds}
				es.PostExec = func(s *entk.Stage, results []*pilot.Task) {
					mu.Lock()
					stageMinExec := 0.0
					for _, t := range results {
						_, _, exec, done := t.Times()
						if pipeStart[pi] == 0 || (exec > 0 && exec < pipeStart[pi]) {
							pipeStart[pi] = exec
						}
						if exec > 0 && (stageMinExec == 0 || exec < stageMinExec) {
							stageMinExec = exec
						}
						if done > pipeEnd[pi] {
							pipeEnd[pi] = done
						}
						if et := t.ExecTime(); et > 0 {
							run.StageTimes[ph][stage] = append(run.StageTimes[ph][stage], et)
						}
					}
					if pi == 0 {
						if stage == workload.StageSimulation && run.PhaseBounds[ph][0] == 0 {
							run.PhaseBounds[ph][0] = stageMinExec
						}
						if stage == workload.StageAgent {
							run.PhaseBounds[ph][1] = eng.Now()
						}
					}
					mu.Unlock()
					if stage == workload.StageAgent && pi == 0 && cfg.PhaseHook != nil {
						cfg.PhaseHook(ph, run.Analysis)
					}
				}
				p.AddStage(es)
			}
		}
		pipelines = append(pipelines, p)
	}

	am := entk.NewAppManager(sess, pl)
	var once sync.Once
	am.OnAllDone(func() {
		once.Do(stopMonitors)
	})
	if err := am.Run(pipelines); err != nil {
		if svc != nil {
			svc.Close()
		}
		return nil, err
	}
	run.Makespan = eng.Run()

	for pi := 0; pi < cfg.Pipelines; pi++ {
		if pipeEnd[pi] > pipeStart[pi] && pipeStart[pi] > 0 {
			run.PipelineTimes = append(run.PipelineTimes, pipeEnd[pi]-pipeStart[pi])
		}
	}
	if client != nil {
		client.Close()
	}
	return run, nil
}

// FreeGPUsOnSomaNodes estimates how many GPUs sat idle on the SOMA nodes —
// the adaptive experiment's "identify free resources during runtime".
func (cfg DDMDConfig) FreeGPUsOnSomaNodes() int {
	if cfg.Mode == ModeShared || cfg.Mode == ModeExclusive {
		return cfg.SomaNodes * platform.Summit().GPUs
	}
	return 0
}
