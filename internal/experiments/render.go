// Package experiments reproduces every table and figure of the paper's
// evaluation (§3–4): the OpenFOAM tuning and overload workflows (Table 1,
// Figs. 4–8) and the DeepDriveMD mini-app workflows (Table 2, Figs. 9–11,
// plus the adaptive study). Each experiment runs the full stack — pilot,
// SOMA service, monitor daemons, workload models — in simulated time, pulls
// its results back out of the SOMA service exactly the way the paper's
// analysis does, and renders the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"

	"github.com/hpcobs/gosoma/internal/stats"
)

// Report is one rendered experiment: a title, free-text commentary binding
// it to the paper, and the rendered body.
type Report struct {
	ID    string // "table1", "fig4", ...
	Title string
	Notes string
	Body  string
}

// String renders the report for the terminal.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", strings.ToUpper(r.ID), r.Title)
	if r.Notes != "" {
		sb.WriteString(wrap(r.Notes, 78))
		sb.WriteString("\n")
	}
	sb.WriteString(r.Body)
	if !strings.HasSuffix(r.Body, "\n") {
		sb.WriteString("\n")
	}
	return sb.String()
}

func wrap(s string, width int) string {
	words := strings.Fields(s)
	var sb strings.Builder
	line := 0
	for _, w := range words {
		if line > 0 && line+1+len(w) > width {
			sb.WriteString("\n")
			line = 0
		} else if line > 0 {
			sb.WriteString(" ")
			line++
		}
		sb.WriteString(w)
		line += len(w)
	}
	return sb.String()
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// boxRow renders one stats.Summary as a boxplot-style text row.
func boxRow(label string, s stats.Summary) []string {
	return []string{
		label,
		fmt.Sprintf("%d", s.N),
		fmt.Sprintf("%.1f", s.Min),
		fmt.Sprintf("%.1f", s.Q1),
		fmt.Sprintf("%.1f", s.Median),
		fmt.Sprintf("%.1f", s.Q3),
		fmt.Sprintf("%.1f", s.Max),
		fmt.Sprintf("%.1f±%.1f", s.Mean, s.Std),
	}
}

var boxHeader = []string{"config", "n", "min", "q1", "median", "q3", "max", "mean±std"}

// sparkline renders values as a unicode mini-chart for timeline figures.
func sparkline(vals []float64, lo, hi float64) string {
	if len(vals) == 0 {
		return ""
	}
	ticks := []rune(" ▁▂▃▄▅▆▇█")
	if hi <= lo {
		hi = lo + 1
	}
	var sb strings.Builder
	for _, v := range vals {
		f := (v - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		sb.WriteRune(ticks[int(f*float64(len(ticks)-1))])
	}
	return sb.String()
}
