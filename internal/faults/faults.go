// Package faults is a deterministic fault-injection transport for the
// mercury RPC layer: it wraps the engine's TCP connections (and inproc call
// path) and, under seeded-PRNG control, delays, drops, severs, corrupts or
// black-holes individual frames and connections.
//
// The point is to make the resilience layer (mercury.CallPolicy retries and
// breakers, the core client's publish spill, the subscribe redial loop)
// testable under the failure modes that dominate long-lived HPC workflow
// deployments — transient connection loss, slow or overloaded service
// instances, lost messages — without ever touching a real network fault.
// Enable it with mercury.WithInjector:
//
//	tr := faults.New(faults.Config{Seed: 42, DropProb: 0.05, SeverProb: 0.01})
//	engine := mercury.NewEngine(mercury.WithInjector(tr))
//
// Every frame written on a wrapped connection draws one decision from the
// transport's seeded PRNG, so a given seed yields the same fault schedule
// (the assignment of faults onto frames depends on goroutine interleaving,
// which is why chaos tests assert outcome invariants — zero loss, zero
// deadlock — rather than exact schedules). Faults only ever subtract
// delivery: the transport never fabricates frames, so any corruption a peer
// observes traces back to a counted injection here.
//
// mercury writes exactly one frame per Write call on both the request and
// response paths, so per-Write decisions are per-frame decisions.
package faults

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hpcobs/gosoma/internal/mercury"
)

// Config sets the per-frame fault probabilities (evaluated in the order
// listed; the first match wins) and the PRNG seed. All probabilities are in
// [0, 1]; zero disables that fault.
type Config struct {
	// Seed initializes the decision PRNG; the same seed replays the same
	// decision sequence.
	Seed int64

	// SeverProb closes the connection mid-frame: the peer sees EOF, every
	// call in flight on it fails.
	SeverProb float64
	// CorruptProb mangles the frame's length prefix into an over-limit
	// value, making the peer reject the stream and drop the connection —
	// the "corrupt length frame" failure of a misbehaving NIC or a
	// half-written buffer.
	CorruptProb float64
	// BlackholeProb silently swallows this frame and every later frame on
	// the connection while keeping it open — the slow-death failure mode a
	// plain disconnect never exercises.
	BlackholeProb float64
	// DropProb silently swallows just this frame.
	DropProb float64
	// DelayProb stalls the frame for a uniform duration in
	// [DelayMin, DelayMax] before writing it through.
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration

	// Budget, when positive, caps the total number of injected faults;
	// after it is spent the transport passes everything through untouched.
	// Chaos tests use it to guarantee the system is eventually allowed to
	// heal.
	Budget int64
}

// Counters tallies injected faults by kind; read them via Transport.Stats.
type Counters struct {
	Delays     int64
	Drops      int64
	Severs     int64
	Corrupts   int64
	Blackholes int64
}

// Transport implements mercury.Injector. One Transport may be shared by
// several engines; its decision stream and budget are global across them.
type Transport struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	enabled   atomic.Bool
	remaining atomic.Int64 // <0 = unlimited

	delays     atomic.Int64
	drops      atomic.Int64
	severs     atomic.Int64
	corrupts   atomic.Int64
	blackholes atomic.Int64
}

// New builds a transport from cfg. It starts enabled.
func New(cfg Config) *Transport {
	t := &Transport{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Budget > 0 {
		t.remaining.Store(cfg.Budget)
	} else {
		t.remaining.Store(-1)
	}
	t.enabled.Store(true)
	return t
}

// SetEnabled turns injection on or off; disabled, the transport passes
// everything through (wrapped connections included). Chaos tests disable it
// to let the system heal before asserting zero loss.
func (t *Transport) SetEnabled(v bool) { t.enabled.Store(v) }

// Reconfigure swaps the probability/delay/budget configuration while keeping
// the seeded decision PRNG (and therefore the decision stream) intact, so a
// scripted fault timeline — mild drops at t=1s, a sever storm at t=3s —
// stays reproducible from the one seed the transport was built with. The
// new budget replaces whatever remained of the old one; cfg.Seed is
// ignored. Enablement is not touched — pair with SetEnabled.
func (t *Transport) Reconfigure(cfg Config) {
	t.mu.Lock()
	cfg.Seed = t.cfg.Seed
	t.cfg = cfg
	t.mu.Unlock()
	if cfg.Budget > 0 {
		t.remaining.Store(cfg.Budget)
	} else {
		t.remaining.Store(-1)
	}
}

// Stats returns the faults injected so far.
func (t *Transport) Stats() Counters {
	return Counters{
		Delays:     t.delays.Load(),
		Drops:      t.drops.Load(),
		Severs:     t.severs.Load(),
		Corrupts:   t.corrupts.Load(),
		Blackholes: t.blackholes.Load(),
	}
}

// kind is one decision drawn from the PRNG.
type kind int

const (
	kindNone kind = iota
	kindSever
	kindCorrupt
	kindBlackhole
	kindDrop
	kindDelay
)

// decide draws the next decision (and delay duration) from the seeded PRNG.
func (t *Transport) decide() (kind, time.Duration) {
	if !t.enabled.Load() {
		return kindNone, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// One uniform draw per frame keeps the decision stream aligned with the
	// frame stream regardless of which probabilities are set.
	u := t.rng.Float64()
	var k kind
	switch {
	case u < t.cfg.SeverProb:
		k = kindSever
	case u < t.cfg.SeverProb+t.cfg.CorruptProb:
		k = kindCorrupt
	case u < t.cfg.SeverProb+t.cfg.CorruptProb+t.cfg.BlackholeProb:
		k = kindBlackhole
	case u < t.cfg.SeverProb+t.cfg.CorruptProb+t.cfg.BlackholeProb+t.cfg.DropProb:
		k = kindDrop
	case u < t.cfg.SeverProb+t.cfg.CorruptProb+t.cfg.BlackholeProb+t.cfg.DropProb+t.cfg.DelayProb:
		k = kindDelay
	default:
		return kindNone, 0
	}
	var d time.Duration
	if k == kindDelay {
		span := t.cfg.DelayMax - t.cfg.DelayMin
		d = t.cfg.DelayMin
		if span > 0 {
			d += time.Duration(t.rng.Int63n(int64(span) + 1))
		}
	}
	// Spend budget only on actual injections.
	for {
		rem := t.remaining.Load()
		if rem < 0 {
			break // unlimited
		}
		if rem == 0 {
			return kindNone, 0
		}
		if t.remaining.CompareAndSwap(rem, rem-1) {
			break
		}
	}
	return k, d
}

func (t *Transport) count(k kind) {
	switch k {
	case kindDelay:
		t.delays.Add(1)
	case kindDrop:
		t.drops.Add(1)
	case kindSever:
		t.severs.Add(1)
	case kindCorrupt:
		t.corrupts.Add(1)
	case kindBlackhole:
		t.blackholes.Add(1)
	}
}

// WrapConn implements mercury.Injector: frames written through the returned
// connection are subject to injected faults. Reads pass through (a faulted
// response is modelled as a fault on the server's write of it).
func (t *Transport) WrapConn(conn net.Conn, client bool) net.Conn {
	return &faultConn{Conn: conn, t: t}
}

// InprocCall implements mercury.Injector for the in-process transport:
// sever and corrupt have no inproc analogue and map onto drop (the caller
// blocks until its context expires, as it would on a lost frame).
func (t *Transport) InprocCall(rpc string) mercury.InjectedFault {
	k, d := t.decide()
	t.count(k)
	switch k {
	case kindDelay:
		return mercury.InjectedFault{Delay: d}
	case kindNone:
		return mercury.InjectedFault{}
	default:
		return mercury.InjectedFault{Drop: true}
	}
}

// faultConn applies write-side fault decisions to one connection.
type faultConn struct {
	net.Conn
	t          *Transport
	blackholed atomic.Bool
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.blackholed.Load() && c.t.enabled.Load() {
		return len(b), nil
	}
	k, d := c.t.decide()
	c.t.count(k)
	switch k {
	case kindNone:
		return c.Conn.Write(b)
	case kindDelay:
		time.Sleep(d)
		return c.Conn.Write(b)
	case kindDrop:
		return len(b), nil
	case kindBlackhole:
		c.blackholed.Store(true)
		return len(b), nil
	case kindCorrupt:
		// Mangle the length prefix into an over-limit value: the peer
		// rejects the frame and drops the connection. Corrupt a copy — the
		// caller's buffer is pooled and reused.
		if len(b) >= 4 {
			mangled := make([]byte, len(b))
			copy(mangled, b)
			mangled[0], mangled[1], mangled[2], mangled[3] = 0xff, 0xff, 0xff, 0xff
			if _, err := c.Conn.Write(mangled); err != nil {
				return 0, err
			}
			return len(b), nil
		}
		return c.Conn.Write(b)
	default: // kindSever
		c.Conn.Close()
		return 0, net.ErrClosed
	}
}
