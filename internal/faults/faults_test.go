package faults

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/mercury"
)

// Two transports with the same seed must draw the same decision sequence —
// the determinism contract the chaos soak's seeded schedules rest on.
func TestSeededDeterminism(t *testing.T) {
	cfg := Config{
		Seed: 1234, SeverProb: 0.1, CorruptProb: 0.1, BlackholeProb: 0.1,
		DropProb: 0.2, DelayProb: 0.3, DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
	}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		ka, da := a.decide()
		kb, db := b.decide()
		if ka != kb || da != db {
			t.Fatalf("decision %d diverged: (%v,%v) vs (%v,%v)", i, ka, da, kb, db)
		}
	}
	diff := New(Config{Seed: 99, SeverProb: 0.5, DropProb: 0.5})
	same := 0
	for i := 0; i < 1000; i++ {
		ka, _ := a.decide()
		kd, _ := diff.decide()
		if ka == kd {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced an identical 1000-decision sequence")
	}
}

// echoService starts a TCP engine with an injector and returns its address.
func echoService(t *testing.T, tr *Transport) (string, *mercury.Engine) {
	t.Helper()
	e := mercury.NewEngine(mercury.WithInjector(tr))
	e.Register("echo", func(_ context.Context, in []byte) ([]byte, error) {
		out := make([]byte, len(in))
		copy(out, in)
		return out, nil
	})
	addr, err := e.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return addr, e
}

func retryPolicy() *mercury.CallPolicy {
	return &mercury.CallPolicy{
		ConnectTimeout: 2 * time.Second,
		AttemptTimeout: 200 * time.Millisecond,
		MaxRetries:     8,
		Backoff:        mercury.Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
		Idempotent:     func(string) bool { return true },
	}
}

// A budgeted run of each fault kind must heal: the retry policy rides
// through exactly Budget injections and the call still completes.
func TestBudgetedFaultsHeal(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		count func(Counters) int64
	}{
		{"sever", Config{Seed: 7, SeverProb: 1, Budget: 2}, func(c Counters) int64 { return c.Severs }},
		{"corrupt", Config{Seed: 7, CorruptProb: 1, Budget: 2}, func(c Counters) int64 { return c.Corrupts }},
		{"drop", Config{Seed: 7, DropProb: 1, Budget: 2}, func(c Counters) int64 { return c.Drops }},
		{"blackhole", Config{Seed: 7, BlackholeProb: 1, Budget: 1}, func(c Counters) int64 { return c.Blackholes }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tr := New(tc.cfg)
			addr, _ := echoService(t, tr)
			ep, err := mercury.LookupPolicy(addr, retryPolicy())
			if err != nil {
				t.Fatal(err)
			}
			defer ep.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			out, err := ep.Call(ctx, "echo", []byte("persist"))
			if err != nil {
				t.Fatalf("call through %s faults never healed: %v", tc.name, err)
			}
			if string(out) != "persist" {
				t.Fatalf("out = %q", out)
			}
			if got := tc.count(tr.Stats()); got != tc.cfg.Budget {
				t.Fatalf("%s injections = %d, want the full budget %d", tc.name, got, tc.cfg.Budget)
			}
		})
	}
}

// SetEnabled(false) must make a hostile transport fully transparent.
func TestDisableRestoresCleanTransport(t *testing.T) {
	tr := New(Config{Seed: 3, DropProb: 1})
	tr.SetEnabled(false)
	addr, _ := echoService(t, tr)
	ep, err := mercury.Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	for i := 0; i < 20; i++ {
		if _, err := ep.Call(context.Background(), "echo", []byte("x")); err != nil {
			t.Fatalf("call %d through disabled transport: %v", i, err)
		}
	}
	if st := tr.Stats(); st != (Counters{}) {
		t.Fatalf("disabled transport injected faults: %+v", st)
	}
}

// Inproc injection: a dropped call blocks until the caller's context dies
// and the handler never fires; after the budget is spent, calls succeed.
func TestInprocDropBlackholesCall(t *testing.T) {
	tr := New(Config{Seed: 11, DropProb: 1, Budget: 1})
	e := mercury.NewEngine(mercury.WithInjector(tr))
	var fired atomic.Int64
	e.Register("ping", func(_ context.Context, _ []byte) ([]byte, error) {
		fired.Add(1)
		return nil, nil
	})
	if _, err := e.Listen("inproc://faults-inproc-drop"); err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	ep, err := mercury.Lookup("inproc://faults-inproc-drop")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ep.Call(ctx, "ping", nil); err == nil {
		t.Fatal("dropped inproc call succeeded")
	}
	if fired.Load() != 0 {
		t.Fatal("dropped inproc call fired the handler")
	}
	// Budget spent: the next call goes through.
	if _, err := ep.Call(context.Background(), "ping", nil); err != nil {
		t.Fatalf("post-budget call: %v", err)
	}
	if fired.Load() != 1 {
		t.Fatalf("handler fired %d times, want 1", fired.Load())
	}
}

// Delays must stall the frame but deliver it.
func TestDelayDelivers(t *testing.T) {
	tr := New(Config{Seed: 5, DelayProb: 1, DelayMin: 30 * time.Millisecond, DelayMax: 30 * time.Millisecond, Budget: 1})
	addr, _ := echoService(t, tr)
	ep, err := mercury.Lookup(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	start := time.Now()
	if _, err := ep.Call(context.Background(), "echo", []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("delayed call completed in %v, want >= ~30ms", el)
	}
	if tr.Stats().Delays != 1 {
		t.Fatalf("delays = %d, want 1", tr.Stats().Delays)
	}
}

// Reconfigure swaps fault kinds and budget mid-run without touching
// enablement, so a scripted timeline can move from one storm to another
// deterministically.
func TestReconfigureSwapsKindsAndBudget(t *testing.T) {
	tr := New(Config{Seed: 9, DropProb: 1, Budget: 2})
	// Spend the drop budget.
	c := tr.WrapConn(nopConn{}, true)
	for i := 0; i < 4; i++ {
		c.Write([]byte("xxxx"))
	}
	st := tr.Stats()
	if st.Drops != 2 {
		t.Fatalf("drops = %d, want 2 (budget)", st.Drops)
	}
	// Swap to delays with a fresh budget; drops must stop, delays start.
	tr.Reconfigure(Config{DelayProb: 1, DelayMin: time.Millisecond, DelayMax: time.Millisecond, Budget: 3})
	for i := 0; i < 5; i++ {
		c.Write([]byte("xxxx"))
	}
	st = tr.Stats()
	if st.Drops != 2 || st.Delays != 3 {
		t.Fatalf("after reconfigure: %+v, want drops=2 delays=3", st)
	}
	// Disabled stays disabled across a reconfigure.
	tr.SetEnabled(false)
	tr.Reconfigure(Config{DropProb: 1, Budget: 10})
	c.Write([]byte("xxxx"))
	if got := tr.Stats().Drops; got != 2 {
		t.Fatalf("disabled transport injected (drops=%d)", got)
	}
}

// nopConn is a sink connection for exercising write-side decisions without
// a real network peer.
type nopConn struct{ net.Conn }

func (nopConn) Write(b []byte) (int, error) { return len(b), nil }
func (nopConn) Close() error                { return nil }
