//go:build chaos

package gosoma_test

// Cluster chaos (make chaos): a 3-instance fleet over real TCP with the
// seeded fault transport severing and dropping frames on the inter-peer
// wire while a shard-routing client publishes distinct leaves through the
// storm. Severed pings mark peers dead, the ring shrinks, rebalance starts
// handing leaves to their new owners — and then more severs land mid-
// rebalance. The asserted outcome is invariant across schedules:
//
//	zero loss — after the storm heals and the rings reconverge, a scattered
//	            soma.query from EVERY instance answers every acknowledged
//	            leaf with its exact value. Handoff never deletes at the
//	            source and reads scatter to all live members, so an
//	            interrupted rebalance has no loss window to expose;
//	zero deadlock — convergence, the final queries and every Close finish
//	            within the test timeout.

import (
	"fmt"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/faults"
	"github.com/hpcobs/gosoma/internal/mercury"
)

func TestChaosClusterSeverMidRebalance(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runClusterSeverStorm(t, seed)
		})
	}
}

func runClusterSeverStorm(t *testing.T, seed int64) {
	// Sever-heavy mix: the point is membership churn (dead peers, ring
	// changes, interrupted handoffs), not frame-level noise. The budget
	// guarantees the storm ends and the fleet is allowed to heal.
	tr := faults.New(faults.Config{
		Seed:      seed,
		SeverProb: 0.03,
		DropProb:  0.03,
		Budget:    300,
	})
	tr.SetEnabled(false) // form the fleet cleanly first

	const fleet = 3
	svcs := make([]*core.Service, fleet)
	addrs := make([]string, fleet)
	for i := range svcs {
		svcs[i] = core.NewService(core.ServiceConfig{
			RanksPerNamespace: 2,
			EngineOptions:     []mercury.Option{mercury.WithInjector(tr)},
		})
		addr, err := svcs[i].Listen("tcp://127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		defer svcs[i].Close()
	}
	for i, s := range svcs {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		err := s.JoinCluster(core.ClusterConfig{
			SelfID:       fmt.Sprintf("soma-%d", i),
			Peers:        peers,
			PingInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, svcs, fleet, 10*time.Second)

	// The publisher rides a clean engine: its acks are real, so "acked" is a
	// trustworthy ledger. The storm lives on the inter-peer wire (and the
	// services' response writes), which is where rebalance and placement run.
	cc, err := core.ConnectCluster(addrs[0], nil, core.ClusterClientConfig{
		Policy:          chaosPolicy(),
		RefreshInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	tr.SetEnabled(true)
	truth := map[string]float64{} // acked leaves only — the zero-loss ledger
	const leaves = 400
	for i := 0; i < leaves; i++ {
		path := fmt.Sprintf("CHAOS/cn%03d/metric", i)
		n := conduit.NewNode()
		n.SetFloat(path, float64(i))
		var perr error
		for attempt := 0; attempt < 50; attempt++ {
			if perr = cc.Publish(core.NSHardware, n); perr == nil {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if perr != nil {
			// Never acked: not in the ledger, nothing owed. (With the fault
			// budget this is rare; losing a few keeps the invariant honest.)
			continue
		}
		truth[path] = float64(i)
	}
	if len(truth) < leaves/2 {
		t.Fatalf("storm acked only %d/%d publishes; schedule too hostile to mean anything", len(truth), leaves)
	}

	// Heal: stop injecting, let pings revive the dead and the rings agree.
	tr.SetEnabled(false)
	waitConverged(t, svcs, fleet, 15*time.Second)

	// Zero loss: every acked leaf, exact value, from every entry point.
	st := tr.Stats()
	t.Logf("seed %d: %d acked, faults injected: severs=%d drops=%d", seed, len(truth), st.Severs, st.Drops)
	for i, addr := range addrs {
		c, err := core.ConnectPolicy(addr, nil, chaosPolicy())
		if err != nil {
			t.Fatal(err)
		}
		var tree *conduit.Node
		deadline := time.Now().Add(10 * time.Second)
		for {
			tree, err = c.Query(core.NSHardware, "")
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("instance %d: scattered query never succeeded after heal: %v", i, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
		for path, want := range truth {
			got, ok := tree.Float(path)
			if !ok {
				t.Fatalf("instance %d: acked leaf %s missing after sever-mid-rebalance storm", i, path)
			}
			if got != want {
				t.Fatalf("instance %d: leaf %s = %v, want %v", i, path, got, want)
			}
		}
		c.Close()
	}
}

// waitConverged blocks until every service's ring reports `alive` members
// under one shared epoch.
func waitConverged(t *testing.T, svcs []*core.Service, alive int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		epochs := map[uint64]bool{}
		ok := true
		for _, s := range svcs {
			e, members := s.ClusterRing()
			if len(members) != alive {
				ok = false
				break
			}
			epochs[e] = true
		}
		if ok && len(epochs) == 1 {
			return
		}
		if time.Now().After(deadline) {
			for i, s := range svcs {
				e, members := s.ClusterRing()
				t.Logf("svc %d: epoch=%x members=%d", i, e, len(members))
			}
			t.Fatal("fleet rings never reconverged after the storm healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
