package gosoma_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// executes the same full-stack simulated run the somabench command uses and
// reports the experiment's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates the paper's results end to end.
//
// The Scaling B bench truncates the sweep at 128 nodes to keep bench time
// bounded; `somabench fig11` runs the full 64-512 sweep.

import (
	"testing"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/experiments"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/tau"
	"github.com/hpcobs/gosoma/internal/workload"
)

func BenchmarkTable1OpenFOAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table1(); r.Body == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2DDMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Table2(); r.Body == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig4Scaling runs the overloaded OpenFOAM workflow (80 tasks, 10+1
// nodes) and reports the 20→82-rank speedup and the 82→164 tail gain.
func BenchmarkFig4Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunOpenFOAM(experiments.OverloadOpenFOAM())
		if err != nil {
			b.Fatal(err)
		}
		byRanks := run.ByRanks()
		m20 := stats.Mean(byRanks[20])
		m82 := stats.Mean(byRanks[82])
		m164 := stats.Mean(byRanks[164])
		b.ReportMetric(m20/m82, "speedup_20_to_82")
		b.ReportMetric(m82/m164, "speedup_82_to_164")
		run.Close()
	}
}

// BenchmarkFig5TauProfile runs the tuning workflow with the TAU plugin and
// reports the MPI_Recv+MPI_Waitall share of total task time.
func BenchmarkFig5TauProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunOpenFOAM(experiments.TuningOpenFOAM())
		if err != nil {
			b.Fatal(err)
		}
		profs, err := run.Analysis.TAUProfiles()
		if err != nil {
			b.Fatal(err)
		}
		totals := tau.FunctionTotals(profs)
		all := 0.0
		for _, v := range totals {
			all += v
		}
		b.ReportMetric((totals["MPI_Recv"]+totals["MPI_Waitall"])/all*100, "recv+waitall_%")
		run.Close()
	}
}

// BenchmarkFig6Placement reports the packed-vs-spread gain of 20-rank tasks.
func BenchmarkFig6Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunOpenFOAM(experiments.OverloadOpenFOAM())
		if err != nil {
			b.Fatal(err)
		}
		bySpan := run.BySpan(20)
		var packed, spread []float64
		for span, ts := range bySpan {
			if span == 1 {
				packed = append(packed, ts...)
			} else {
				spread = append(spread, ts...)
			}
		}
		if len(packed) > 0 && len(spread) > 0 {
			b.ReportMetric(stats.Mean(packed)/stats.Mean(spread), "spread_gain_20rank")
		}
		run.Close()
	}
}

// BenchmarkFig7CPUUtil reports the per-node utilization sample count and
// peak of the tuning run's hardware namespace.
func BenchmarkFig7CPUUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunOpenFOAM(experiments.TuningOpenFOAM())
		if err != nil {
			b.Fatal(err)
		}
		peak, samples := 0.0, 0
		for _, h := range run.Hosts {
			series, err := run.Analysis.CPUUtilSeries(h)
			if err != nil {
				b.Fatal(err)
			}
			samples += len(series)
			for _, p := range series {
				if p.Util > peak {
					peak = p.Util
				}
			}
		}
		b.ReportMetric(float64(samples), "hw_samples")
		b.ReportMetric(peak, "peak_util_%")
		run.Close()
	}
}

// BenchmarkFig8Utilization reports the overload run's overall core
// utilization, the quantity Fig. 8's white space depicts.
func BenchmarkFig8Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunOpenFOAM(experiments.OverloadOpenFOAM())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(run.Timeline.Utilization(run.Makespan)*100, "core_util_%")
		run.Close()
	}
}

// BenchmarkFig9DDMDTuning reports the mean CPU utilization across the six
// tuning phases — the "remains low" observation.
func BenchmarkFig9DDMDTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunDDMD(experiments.TuningDDMD())
		if err != nil {
			b.Fatal(err)
		}
		util, err := run.Analysis.MeanClusterUtil()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(util, "mean_cpu_util_%")
		run.Close()
	}
}

// BenchmarkFig10ScalingA runs the six Scaling A configurations and reports
// the shared-vs-exclusive median gap at the 1:1 ratio.
func BenchmarkFig10ScalingA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sharedMed, exclMed float64
		for _, cfg := range experiments.ScalingAConfigs() {
			run, err := experiments.RunDDMD(cfg)
			if err != nil {
				b.Fatal(err)
			}
			s := stats.Summarize(run.PipelineTimes)
			if cfg.RanksPerNamespace == 64 {
				if cfg.Mode == experiments.ModeShared {
					sharedMed = s.Median
				} else {
					exclMed = s.Median
				}
			}
			run.Close()
		}
		if sharedMed > 0 {
			b.ReportMetric((exclMed-sharedMed)/exclMed*100, "shared_gain_%")
		}
	}
}

// BenchmarkFig11ScalingB runs the Scaling B sweep to 128 nodes and reports
// the frequent-exclusive overhead at each scale.
func BenchmarkFig11ScalingB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFig11(128)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Mode == experiments.ModeExclusive && r.IntervalSec == 10 {
				switch r.AppNodes {
				case 64:
					b.ReportMetric(r.OverheadPct, "freq_excl_overhead_64n_%")
				case 128:
					b.ReportMetric(r.OverheadPct, "freq_excl_overhead_128n_%")
				}
			}
		}
	}
}

// BenchmarkAdaptiveAnalysis runs the four-phase adaptive study and reports
// the training-stage speedup from phase 1 (1 task) to phase 4 (6 tasks).
func BenchmarkAdaptiveAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.AdaptiveDDMD()
		advisor := core.NewAdvisor()
		suggestions := 0
		cfg.PhaseHook = func(phase int, analysis core.Analysis) {
			util, err := analysis.MeanClusterUtil()
			if err != nil {
				return
			}
			if advisor.SuggestTrainTasks(cfg.PerPhaseTrainTasks[phase], util,
				cfg.FreeGPUsOnSomaNodes()) > cfg.PerPhaseTrainTasks[phase] {
				suggestions++
			}
		}
		run, err := experiments.RunDDMD(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr1 := stats.Mean(run.StageTimes[0][workload.StageTraining])
		tr4 := stats.Mean(run.StageTimes[3][workload.StageTraining])
		b.ReportMetric(tr1/tr4, "train_speedup_1_to_6_tasks")
		b.ReportMetric(float64(suggestions), "fanout_suggestions")
		run.Close()
	}
}
