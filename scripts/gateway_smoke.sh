#!/usr/bin/env bash
# gateway_smoke.sh — end-to-end proof of the HTTP/WebSocket gateway.
#
# Boots somad + somagate, publishes real traffic via somabench, then
# asserts the tentpole claims from the outside:
#
#   1. the JSON API answers (query/series/health/stats/alerts/traces),
#   2. a repeat query is served from the encoded-snapshot/delta cache
#      (gosoma_gateway_query_cache_hits moves in /metrics),
#   3. per-client rate limiting returns 429 under burst,
#   4. a live WS subscription survives one somad restart with messages
#      still arriving afterwards and all loss accounted in-stream,
#   5. HTTP availability never blinks across the restart (a background
#      /api/health poll loop sees zero failures),
#   6. no leaked goroutines (gateway goroutine gauge returns to baseline).
#
# Every verdict is emitted as one machine-readable line:
#   GATEWAY_SMOKE <check>=<pass|fail> detail...
#
# pipefail matters: several checks pipe curl through awk/grep, and a curl
# failure must fail the check, not vanish behind the filter's exit code.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
SOMAD_PID=""
SOMAGATE_PID=""
HEALTH_PID=""
WS_PID=""
cleanup() {
    for pid in "$WS_PID" "$HEALTH_PID" "$SOMAGATE_PID" "$SOMAD_PID"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

fail() {
    echo "GATEWAY_SMOKE $1=fail $2"
    echo "gateway-smoke: FAIL: $2" >&2
    exit 1
}
pass() {
    echo "GATEWAY_SMOKE $1=pass ${2:-}"
}

echo "gateway-smoke: building binaries"
go build -o "$workdir/somad" ./cmd/somad
go build -o "$workdir/somagate" ./cmd/somagate
go build -o "$workdir/somabench" ./cmd/somabench

# --- boot somad on an ephemeral port, capture its concrete address -------
"$workdir/somad" -listen tcp://127.0.0.1:0 >"$workdir/somad.addr" 2>"$workdir/somad.log" &
SOMAD_PID=$!
for _ in $(seq 1 50); do
    [ -s "$workdir/somad.addr" ] && break
    sleep 0.1
done
SOMA_ADDR=$(head -n1 "$workdir/somad.addr")
[ -n "$SOMA_ADDR" ] || fail boot "somad printed no address"
echo "gateway-smoke: somad at $SOMA_ADDR"

# --- boot somagate ------------------------------------------------------
# The bucket is sized so the paced functional checks (a handful of requests
# per second) never trip it, while the single-process 300-request burst at
# the end overruns it decisively. /api/health and /metrics are exempt.
"$workdir/somagate" -upstream "$SOMA_ADDR" -listen 127.0.0.1:0 -rate 30 -burst 60 \
    >"$workdir/somagate.addr" 2>"$workdir/somagate.log" &
SOMAGATE_PID=$!
for _ in $(seq 1 50); do
    [ -s "$workdir/somagate.addr" ] && break
    sleep 0.1
done
GATE_URL=$(head -n1 "$workdir/somagate.addr")
[ -n "$GATE_URL" ] || fail boot "somagate printed no address"
GATE_HOST=${GATE_URL#http://}
echo "gateway-smoke: somagate at $GATE_URL"

# --- publish real traffic via somabench ---------------------------------
"$workdir/somabench" pub -addr "$SOMA_ADDR" -ns hardware -paths 6 -rounds 10 -every 50ms \
    >"$workdir/pub1.json" || fail publish "somabench pub failed"
pass publish "rounds=10"

# --- JSON API sweep ------------------------------------------------------
for route in "/api/health" "/api/stats" "/api/query?ns=hardware" \
             "/api/series?ns=hardware" "/api/alerts" "/api/traces?sort=slowest" \
             "/api/telemetry?self=1" "/" "/metrics"; do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$GATE_URL$route")
    [ "$code" = "200" ] || fail api "$route returned $code"
done
curl -s "$GATE_URL/api/health" | grep -q '"status":"ok"' || fail api "health not ok"
pass api "9 routes 200"

# --- query cache: repeat queries hit the memoized JSON body --------------
curl -s -o /dev/null "$GATE_URL/api/query?ns=hardware"
curl -s -o /dev/null "$GATE_URL/api/query?ns=hardware"
cache_header=$(curl -s -o /dev/null -w '%{header_json}' "$GATE_URL/api/query?ns=hardware" \
    | grep -o '"x-soma-cache":\["hit"\]' || true)
hits=$(curl -s "$GATE_URL/metrics" | awk '/^gosoma_gateway_query_cache_hits /{print $2}')
[ "${hits:-0}" -ge 1 ] || fail cache "cache_hits=$hits after repeat queries"
[ -n "$cache_header" ] || fail cache "repeat query not marked X-Soma-Cache: hit"
pass cache "hits=$hits"

# --- baseline goroutines (scrape refreshes the gauge) --------------------
base_goroutines=$(curl -s "$GATE_URL/metrics" | awk '/^gosoma_gateway_process_goroutines /{print $2}' | cut -d. -f1)
[ -n "$base_goroutines" ] || fail metrics "no goroutine gauge"

# --- availability poll + WS probe run in the background ------------------
: >"$workdir/health_fail"
( end=$(( $(date +%s) + 20 ))
  polls=0
  while [ "$(date +%s)" -lt "$end" ]; do
      out=$(curl -s --max-time 2 "$GATE_URL/api/health" || echo CURL_FAIL)
      case "$out" in
          *'"status"'*) polls=$((polls+1)) ;;
          *) echo "poll failed: $out" >>"$workdir/health_fail" ;;
      esac
      sleep 0.2
  done
  echo "$polls" >"$workdir/health_polls"
) &
HEALTH_PID=$!

"$workdir/somabench" ws -url "ws://$GATE_HOST/ws?ns=hardware" -for 18s -min-messages 2 \
    >"$workdir/ws.json" 2>"$workdir/ws.log" &
WS_PID=$!
sleep 1

# --- traffic before the restart -----------------------------------------
"$workdir/somabench" pub -addr "$SOMA_ADDR" -ns hardware -paths 6 -rounds 20 -every 100ms \
    >"$workdir/pub2.json" &

# --- kill somad, restart on the SAME port -------------------------------
sleep 3
SOMA_PORT=${SOMA_ADDR##*:}
kill "$SOMAD_PID"
wait "$SOMAD_PID" 2>/dev/null || true
echo "gateway-smoke: somad down, restarting on port $SOMA_PORT"
sleep 1
"$workdir/somad" -listen "tcp://127.0.0.1:$SOMA_PORT" >"$workdir/somad2.addr" 2>"$workdir/somad2.log" &
SOMAD_PID=$!
for _ in $(seq 1 50); do
    [ -s "$workdir/somad2.addr" ] && break
    sleep 0.1
done

# --- traffic after the restart (must reach the resubscribed WS) ----------
"$workdir/somabench" pub -addr "$SOMA_ADDR" -ns hardware -paths 6 -rounds 60 -every 150ms \
    >"$workdir/pub3.json" || fail publish "post-restart somabench pub failed"

# --- WS probe verdict ----------------------------------------------------
wait "$WS_PID" && ws_rc=0 || ws_rc=$?
WS_PID=""
cat "$workdir/ws.json"
[ "$ws_rc" = "0" ] || fail ws "probe exit=$ws_rc ($(cat "$workdir/ws.log" 2>/dev/null))"
grep -q '"disconnect_closed": false' "$workdir/ws.json" || fail ws "socket torn during restart"
pass ws "subscription survived the restart"

# --- availability verdict ------------------------------------------------
wait "$HEALTH_PID" || true
HEALTH_PID=""
if [ -s "$workdir/health_fail" ]; then
    fail availability "$(wc -l <"$workdir/health_fail") failed health polls: $(head -n1 "$workdir/health_fail")"
fi
polls=$(cat "$workdir/health_polls" 2>/dev/null || echo 0)
[ "$polls" -ge 10 ] || fail availability "only $polls successful polls"
pass availability "polls=$polls failures=0"

# --- rate limiting: burst past the allowance must yield 429s -------------
# One curl process, 300 transfers over a kept-alive connection: far faster
# than the bucket refills, so the 60-token burst allowance must run dry.
urls=""
i=0
while [ "$i" -lt 300 ]; do
    urls="$urls $GATE_URL/api/stats"
    i=$((i + 1))
done
# shellcheck disable=SC2086
saw429=$(curl -s -o /dev/null -w '%{http_code}\n' $urls | grep -c '^429' || true)
[ "$saw429" -ge 1 ] || fail ratelimit "no 429 in a 300-request burst"
code=$(curl -s -o /dev/null -w '%{http_code}' "$GATE_URL/api/health")
[ "$code" = "200" ] || fail ratelimit "health throttled ($code) — liveness must be exempt"
pass ratelimit "429s=$saw429 health_exempt=yes"

# --- goroutine leak check ------------------------------------------------
sleep 2
end_goroutines=$(curl -s "$GATE_URL/metrics" | awk '/^gosoma_gateway_process_goroutines /{print $2}' | cut -d. -f1)
budget=$((base_goroutines + 10))
[ "$end_goroutines" -le "$budget" ] || fail goroutines "base=$base_goroutines end=$end_goroutines"
pass goroutines "base=$base_goroutines end=$end_goroutines"

echo "gateway-smoke: PASS"
