#!/usr/bin/env bash
# scenarios.sh — run every scenario in scenarios/ end-to-end and fail if any
# verdict comes back red.
#
# Each scenario boots a real fleet (somad child processes by default; pass
# SCENARIO_FLAGS=-inproc for in-process services), plays its fault timeline,
# and judges its assertions. Per scenario the human timeline goes to
# <logdir>/<name>.log and the SCENARIO_VERDICT JSON line to
# <logdir>/<name>.verdict; pipefail keeps somasim's exit code authoritative
# through the tee.
#
#   SCENARIO_LOG_DIR   where to keep logs/verdicts (default: mktemp -d)
#   SCENARIO_FLAGS     extra `somasim run` flags (-inproc, -seed N, ...)
set -euo pipefail

cd "$(dirname "$0")/.."

go build -o bin/somad ./cmd/somad
go build -o bin/somasim ./cmd/somasim

logdir=${SCENARIO_LOG_DIR:-$(mktemp -d)}
mkdir -p "$logdir"
echo "scenarios: logs in $logdir"

fail=0
for f in scenarios/*.yaml; do
    name=$(basename "$f" .yaml)
    echo "=== scenario $name ==="
    # shellcheck disable=SC2086  # SCENARIO_FLAGS is intentionally word-split
    if bin/somasim run ${SCENARIO_FLAGS:-} "$f" \
        2>"$logdir/$name.log" | tee "$logdir/$name.verdict"; then
        echo "scenario $name: PASS"
    else
        echo "scenario $name: FAIL (timeline tail follows; full log: $logdir/$name.log)"
        tail -n 25 "$logdir/$name.log" || true
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "scenarios: FAIL"
    exit 1
fi
echo "scenarios: PASS ($(ls scenarios/*.yaml | wc -l | tr -d ' ') scenarios)"
