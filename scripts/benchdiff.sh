#!/bin/sh
# benchdiff.sh — guard the publish ingest hot path against regressions.
#
# Default mode runs BenchmarkPublishIngest several times, takes the median
# ns/op, and compares it against the committed reference in
# scripts/bench_baseline.json. The check fails when the median exceeds
# baseline * allowed_regression.
#
# --telemetry mode measures the cost of span tracing instead: each round
# runs BenchmarkPublishIngest and BenchmarkPublishIngestTraced back to back
# in ONE go test process and records the traced/untraced ratio; the check
# fails when the median ratio exceeds max_traced_overhead (1.05 = 5%, the
# budget from the paper's overhead tables). Pairing the runs inside one
# process cancels the machine-state drift that dominates cross-invocation
# comparisons, so the check is host-independent. The Default registry ships
# with the tail-sampling trace store always on, so the traced side includes
# trace assembly + the tail-sampler keep/drop decision — the 5% gate runs
# with sampling enabled, not against a stripped-down tracer. The mode also
# gates the sampler hot path in isolation (BenchmarkTraceTailSampler vs
# tail_sampler_ns_per_op in the baseline).
#
# The baseline is machine-specific: absolute ns/op numbers move between
# hosts, so the allowed_regression factor is generous and the baseline
# should be refreshed (./scripts/benchdiff.sh --update) when benchmarking
# on a new reference machine or after an intentional perf change.
#
# Environment:
#   BENCH_COUNT  runs per median (default 5). Noisy shared CI runners
#                should raise this; quick local checks can lower it.
#
# Every verdict is also emitted as one machine-readable line the CI
# workflow greps out of the job log:
#   BENCHDIFF_SUMMARY mode=<ingest|stream|telemetry> ... result=<pass|fail>
set -eu

cd "$(dirname "$0")/.."
baseline=scripts/bench_baseline.json
bench=BenchmarkPublishIngest
traced=BenchmarkPublishIngestTraced
series=BenchmarkSeriesQuery
fanout=BenchmarkSubscribeFanout
qhot=BenchmarkQueryHot
qnocache=BenchmarkQueryEncodeNoCache
qdelta=BenchmarkQueryDelta
qrebuild=BenchmarkSnapshotRebuild
batch=BenchmarkPublishBatch
sampler=BenchmarkTraceTailSampler
scatter=BenchmarkScatterGatherQuery
count=${BENCH_COUNT:-5}

# Everything except --update compares against the committed baseline; fail
# up front with an actionable message when it is absent (fresh clone with the
# file deleted, or a CI cache restored wrong) instead of an awk parse error.
mode=ingest
[ "${1:-}" = "--telemetry" ] && mode=telemetry

if [ "${1:-}" != "--update" ] && [ ! -f "$baseline" ]; then
	echo "benchdiff: baseline file $baseline is missing." >&2
	echo "benchdiff: run './scripts/benchdiff.sh --update' on the reference machine and commit it." >&2
	echo "BENCHDIFF_SUMMARY mode=$mode result=fail reason=missing_baseline"
	exit 1
fi

# median_of <benchmark> — median ns/op over $count runs.
median_of() {
	go test ./internal/core/ -run '^$' -bench "$1\$" -count "$count" |
		awk -v b="$1" '$1 ~ "^"b {print $3}' | sort -n |
		awk '{v[NR]=$1} END {if (NR==0) exit 1; print v[int((NR+1)/2)]}'
}

# json_num <key> — numeric value of a top-level key in the baseline file.
json_num() {
	awk -F'[:,]' -v k="\"$1\"" '$0 ~ k {gsub(/[^0-9.]/, "", $2); print $2; exit}' "$baseline" 2>/dev/null || true
}

if [ "${1:-}" = "--telemetry" ]; then
	ratios=""
	i=0
	while [ "$i" -lt "$count" ]; do
		i=$((i + 1))
		out=$(go test ./internal/core/ -run '^$' \
			-bench "${bench}\$|${traced}\$" -count 5)
		# Min of 5 in-process runs per side: the minimum is the least
		# noise-contaminated estimate of a CPU-bound benchmark's true cost.
		um=$(printf '%s\n' "$out" | awk -v b="$bench" '$1 == b || $1 ~ "^"b"-" {print $3}' |
			sort -n | head -n 1)
		tm=$(printf '%s\n' "$out" | awk -v b="$traced" '$1 == b || $1 ~ "^"b"-" {print $3}' |
			sort -n | head -n 1)
		if [ -z "$um" ] || [ -z "$tm" ]; then
			echo "telemetry-overhead: round $i collected no samples" >&2
			exit 1
		fi
		r=$(awk -v u="$um" -v t="$tm" 'BEGIN {printf "%.4f", t/u}')
		echo "telemetry-overhead: round $i: untraced ${um} ns/op, traced ${tm} ns/op, ratio ${r}x"
		ratios="$ratios $r"
	done
	maxov=$(json_num max_traced_overhead)
	[ -n "$maxov" ] || maxov=1.05
	median_ratio=$(printf '%s\n' $ratios | sort -n |
		awk '{v[NR]=$1} END {print v[int((NR+1)/2)]}')
	echo "telemetry-overhead: median ratio ${median_ratio}x (limit ${maxov}x)"
	if awk -v r="$median_ratio" -v f="$maxov" 'BEGIN {exit (r > f) ? 0 : 1}'; then
		echo "telemetry-overhead: FAIL — tracing costs more than the allowed overhead" >&2
		echo "BENCHDIFF_SUMMARY mode=telemetry median_ratio=$median_ratio limit=$maxov result=fail"
		exit 1
	fi
	echo "telemetry-overhead: OK"
	echo "BENCHDIFF_SUMMARY mode=telemetry median_ratio=$median_ratio limit=$maxov result=pass"
	# Sampler hot-path gate: root-span start→end against a default-bounded
	# trace store, in isolation. Skipped when the baseline predates it.
	sbase=$(json_num tail_sampler_ns_per_op)
	sfactor=$(json_num sampler_allowed_regression)
	if [ -n "$sbase" ] && [ "$sbase" != "0" ] && [ -n "$sfactor" ]; then
		sm=$(median_of "$sampler")
		if [ -z "$sm" ]; then
			echo "telemetry-overhead: no samples collected for $sampler" >&2
			exit 1
		fi
		slimit=$(awk -v b="$sbase" -v f="$sfactor" 'BEGIN {printf "%.0f", b*f}')
		echo "telemetry-overhead: $sampler median ${sm} ns/op (baseline ${sbase}, limit ${slimit})"
		if awk -v m="$sm" -v l="$slimit" 'BEGIN {exit (m > l) ? 0 : 1}'; then
			echo "telemetry-overhead: FAIL — $sampler median ${sm} ns/op exceeds limit ${slimit} ns/op" >&2
			echo "BENCHDIFF_SUMMARY mode=sampler benchmark=$sampler median_ns_per_op=$sm baseline_ns_per_op=$sbase limit_ns_per_op=$slimit result=fail"
			exit 1
		fi
		echo "BENCHDIFF_SUMMARY mode=sampler benchmark=$sampler median_ns_per_op=$sm baseline_ns_per_op=$sbase limit_ns_per_op=$slimit result=pass"
	fi
	exit 0
fi

median=$(median_of "$bench")
if [ -z "$median" ]; then
	echo "benchdiff: no samples collected for $bench" >&2
	exit 1
fi

if [ "${1:-}" = "--update" ]; then
	pre=$(json_num pre_change_ns_per_op)
	tracedm=$(median_of "$traced")
	seriesm=$(median_of "$series")
	fanoutm=$(median_of "$fanout")
	qhotm=$(median_of "$qhot")
	qdeltam=$(median_of "$qdelta")
	qrebuildm=$(median_of "$qrebuild")
	batchm=$(median_of "$batch")
	samplerm=$(median_of "$sampler")
	scatterm=$(median_of "$scatter")
	cat >"$baseline" <<EOF
{
  "benchmark": "$bench",
  "ns_per_op": $median,
  "allowed_regression": 1.5,
  "pre_change_ns_per_op": ${pre:-0},
  "traced_benchmark": "$traced",
  "traced_ns_per_op": ${tracedm:-0},
  "max_traced_overhead": 1.05,
  "series_query_benchmark": "$series",
  "series_query_ns_per_op": ${seriesm:-0},
  "subscribe_fanout_benchmark": "$fanout",
  "subscribe_fanout_ns_per_op": ${fanoutm:-0},
  "stream_allowed_regression": 2.0,
  "query_hot_benchmark": "$qhot",
  "query_hot_ns_per_op": ${qhotm:-0},
  "query_delta_benchmark": "$qdelta",
  "query_delta_ns_per_op": ${qdeltam:-0},
  "snapshot_rebuild_benchmark": "$qrebuild",
  "snapshot_rebuild_ns_per_op": ${qrebuildm:-0},
  "query_allowed_regression": 2.0,
  "min_query_speedup": 5,
  "publish_batch_benchmark": "$batch",
  "publish_batch_ns_per_op": ${batchm:-0},
  "batch_allowed_regression": 2.0,
  "min_batch_publishes_per_sec": 500000,
  "tail_sampler_benchmark": "$sampler",
  "tail_sampler_ns_per_op": ${samplerm:-0},
  "sampler_allowed_regression": 2.0,
  "scatter_gather_benchmark": "$scatter",
  "scatter_gather_ns_per_op": ${scatterm:-0},
  "scatter_allowed_regression": 2.0,
  "recorded": "$(date -u +%Y-%m-%d)"
}
EOF
	echo "benchdiff: baseline updated to $median ns/op (traced ${tracedm:-0}, series ${seriesm:-0}, fanout ${fanoutm:-0}, query-hot ${qhotm:-0}, query-delta ${qdeltam:-0}, rebuild ${qrebuildm:-0}, batch ${batchm:-0}, sampler ${samplerm:-0}, scatter ${scatterm:-0} ns/op)"
	exit 0
fi

base=$(json_num ns_per_op)
factor=$(json_num allowed_regression)
pre=$(json_num pre_change_ns_per_op)

limit=$(awk -v b="$base" -v f="$factor" 'BEGIN {printf "%.0f", b*f}')
echo "benchdiff: $bench median ${median} ns/op (baseline ${base}, limit ${limit})"
if [ -n "$pre" ] && [ "$pre" -gt 0 ]; then
	awk -v p="$pre" -v m="$median" 'BEGIN {printf "benchdiff: %.2fx over the pre-sharding ingest pipeline (%d ns/op)\n", p/m, p}'
fi

if [ "$median" -gt "$limit" ]; then
	echo "benchdiff: FAIL — median ${median} ns/op exceeds limit ${limit} ns/op" >&2
	echo "BENCHDIFF_SUMMARY mode=ingest benchmark=$bench median_ns_per_op=$median baseline_ns_per_op=$base limit_ns_per_op=$limit result=fail"
	exit 1
fi
echo "BENCHDIFF_SUMMARY mode=ingest benchmark=$bench median_ns_per_op=$median baseline_ns_per_op=$base limit_ns_per_op=$limit result=pass"

# Streaming guards: rollup query and subscriber fan-out, gated by their own
# (more generous) factor. Skipped when the baseline predates them.
sfactor=$(json_num stream_allowed_regression)
check_stream() {
	name=$1
	base=$(json_num "$2")
	if [ -z "$base" ] || [ "$base" = "0" ] || [ -z "$sfactor" ]; then
		return 0
	fi
	m=$(median_of "$name")
	if [ -z "$m" ]; then
		echo "benchdiff: no samples collected for $name" >&2
		exit 1
	fi
	slimit=$(awk -v b="$base" -v f="$sfactor" 'BEGIN {printf "%.0f", b*f}')
	echo "benchdiff: $name median ${m} ns/op (baseline ${base}, limit ${slimit})"
	if [ "$m" -gt "$slimit" ]; then
		echo "benchdiff: FAIL — $name median ${m} ns/op exceeds limit ${slimit} ns/op" >&2
		echo "BENCHDIFF_SUMMARY mode=stream benchmark=$name median_ns_per_op=$m baseline_ns_per_op=$base limit_ns_per_op=$slimit result=fail"
		exit 1
	fi
	echo "BENCHDIFF_SUMMARY mode=stream benchmark=$name median_ns_per_op=$m baseline_ns_per_op=$base limit_ns_per_op=$slimit result=pass"
}
check_stream "$series" series_query_ns_per_op
check_stream "$fanout" subscribe_fanout_ns_per_op

# Query-path guards (the encoded-snapshot cache). Three layers:
#   1. absolute ns/op medians for the hot/delta/rebuild benchmarks against
#      the committed baseline (skipped when the baseline predates them),
#   2. a live speedup gate — BenchmarkQueryHot vs BenchmarkQueryEncodeNoCache
#      run paired in ONE go test process, so the >=5x requirement is a ratio
#      and holds on any host,
#   3. an allocation lock — the hot and delta paths must report 0 allocs/op
#      (-benchmem), the property that makes repeated queries nearly free.
qfactor=$(json_num query_allowed_regression)
check_query() {
	name=$1
	base=$(json_num "$2")
	if [ -z "$base" ] || [ "$base" = "0" ] || [ -z "$qfactor" ]; then
		return 0
	fi
	m=$(median_of "$name")
	if [ -z "$m" ]; then
		echo "benchdiff: no samples collected for $name" >&2
		exit 1
	fi
	qlimit=$(awk -v b="$base" -v f="$qfactor" 'BEGIN {printf "%.0f", b*f}')
	echo "benchdiff: $name median ${m} ns/op (baseline ${base}, limit ${qlimit})"
	# awk, not [ -gt ]: sub-microsecond benchmarks report fractional ns/op.
	if awk -v m="$m" -v l="$qlimit" 'BEGIN {exit (m > l) ? 0 : 1}'; then
		echo "benchdiff: FAIL — $name median ${m} ns/op exceeds limit ${qlimit} ns/op" >&2
		echo "BENCHDIFF_SUMMARY mode=query benchmark=$name median_ns_per_op=$m baseline_ns_per_op=$base limit_ns_per_op=$qlimit result=fail"
		exit 1
	fi
	echo "BENCHDIFF_SUMMARY mode=query benchmark=$name median_ns_per_op=$m baseline_ns_per_op=$base limit_ns_per_op=$qlimit result=pass"
}
check_query "$qhot" query_hot_ns_per_op
check_query "$qdelta" query_delta_ns_per_op
check_query "$qrebuild" snapshot_rebuild_ns_per_op

minspeed=$(json_num min_query_speedup)
[ -n "$minspeed" ] || minspeed=5
qout=$(go test ./internal/core/ -run '^$' \
	-bench "${qhot}\$|${qnocache}\$|${qdelta}\$" -benchmem -count 3)
# -benchmem rows: name iters ns/op "ns/op" B/op "B/op" allocs "allocs/op";
# min ns/op per side (least noise-contaminated), max allocs (must stay 0 on
# every run, not just the median one).
hotns=$(printf '%s\n' "$qout" | awk -v b="$qhot" '$1 == b || $1 ~ "^"b"-" {print $3}' |
	sort -n | head -n 1)
nons=$(printf '%s\n' "$qout" | awk -v b="$qnocache" '$1 == b || $1 ~ "^"b"-" {print $3}' |
	sort -n | head -n 1)
hotallocs=$(printf '%s\n' "$qout" | awk -v b="$qhot" '$1 == b || $1 ~ "^"b"-" {print $7}' |
	sort -n | tail -n 1)
deltaallocs=$(printf '%s\n' "$qout" | awk -v b="$qdelta" '$1 == b || $1 ~ "^"b"-" {print $7}' |
	sort -n | tail -n 1)
if [ -z "$hotns" ] || [ -z "$nons" ] || [ -z "$hotallocs" ] || [ -z "$deltaallocs" ]; then
	echo "benchdiff: query speedup run collected no samples" >&2
	exit 1
fi
speedup=$(awk -v h="$hotns" -v n="$nons" 'BEGIN {printf "%.1f", n/h}')
echo "benchdiff: query cache speedup ${speedup}x (cached ${hotns} ns/op vs uncached ${nons} ns/op, need >=${minspeed}x)"
echo "benchdiff: query allocs/op: hot ${hotallocs}, delta ${deltaallocs} (need 0)"
if awk -v s="$speedup" -v m="$minspeed" 'BEGIN {exit (s < m) ? 0 : 1}'; then
	echo "benchdiff: FAIL — cached query path is only ${speedup}x over the uncached encode" >&2
	echo "BENCHDIFF_SUMMARY mode=query-speedup speedup=$speedup min=$minspeed hot_allocs=$hotallocs delta_allocs=$deltaallocs result=fail"
	exit 1
fi
if [ "$hotallocs" != "0" ] || [ "$deltaallocs" != "0" ]; then
	echo "benchdiff: FAIL — query hot path allocates (hot ${hotallocs}, delta ${deltaallocs} allocs/op)" >&2
	echo "BENCHDIFF_SUMMARY mode=query-speedup speedup=$speedup min=$minspeed hot_allocs=$hotallocs delta_allocs=$deltaallocs result=fail"
	exit 1
fi
echo "BENCHDIFF_SUMMARY mode=query-speedup speedup=$speedup min=$minspeed hot_allocs=$hotallocs delta_allocs=$deltaallocs result=pass"

# Coalesced-publish throughput gate: BenchmarkPublishBatch times one logical
# publish through the wire-batched pipeline end to end, so 1e9/ns_per_op is
# the sustained publishes/sec one connection carries. Two checks: a relative
# regression limit against the committed baseline, and an absolute floor
# (min_batch_publishes_per_sec — the load-harness SLO derated for CI noise).
# Skipped when the baseline predates the batch pipeline.
bbase=$(json_num publish_batch_ns_per_op)
bfactor=$(json_num batch_allowed_regression)
bfloor=$(json_num min_batch_publishes_per_sec)
if [ -n "$bbase" ] && [ "$bbase" != "0" ] && [ -n "$bfactor" ]; then
	bm=$(median_of "$batch")
	if [ -z "$bm" ]; then
		echo "benchdiff: no samples collected for $batch" >&2
		exit 1
	fi
	[ -n "$bfloor" ] || bfloor=500000
	blimit=$(awk -v b="$bbase" -v f="$bfactor" 'BEGIN {printf "%.0f", b*f}')
	rate=$(awk -v m="$bm" 'BEGIN {printf "%.0f", 1e9/m}')
	echo "benchdiff: $batch median ${bm} ns/op = ${rate} publishes/sec (limit ${blimit} ns/op, floor ${bfloor}/sec)"
	if awk -v m="$bm" -v l="$blimit" 'BEGIN {exit (m > l) ? 0 : 1}'; then
		echo "benchdiff: FAIL — $batch median ${bm} ns/op exceeds limit ${blimit} ns/op" >&2
		echo "BENCHDIFF_SUMMARY mode=batch benchmark=$batch median_ns_per_op=$bm publishes_per_sec=$rate limit_ns_per_op=$blimit floor_per_sec=$bfloor result=fail"
		exit 1
	fi
	if awk -v r="$rate" -v f="$bfloor" 'BEGIN {exit (r < f) ? 0 : 1}'; then
		echo "benchdiff: FAIL — batched publish rate ${rate}/sec is below the ${bfloor}/sec floor" >&2
		echo "BENCHDIFF_SUMMARY mode=batch benchmark=$batch median_ns_per_op=$bm publishes_per_sec=$rate limit_ns_per_op=$blimit floor_per_sec=$bfloor result=fail"
		exit 1
	fi
	echo "BENCHDIFF_SUMMARY mode=batch benchmark=$batch median_ns_per_op=$bm publishes_per_sec=$rate limit_ns_per_op=$blimit floor_per_sec=$bfloor result=pass"
fi

# Scatter-gather query gate: BenchmarkScatterGatherQuery times one fleet-wide
# soma.query fanned out to a 3-instance cluster over real loopback TCP and
# merged, so it covers the scatter RPC, the per-shard encode, and the merge
# path end to end. The factor is generous — the loopback round-trips make it
# the noisiest benchmark in the suite. Skipped when the baseline predates the
# cluster layer.
scbase=$(json_num scatter_gather_ns_per_op)
scfactor=$(json_num scatter_allowed_regression)
if [ -n "$scbase" ] && [ "$scbase" != "0" ] && [ -n "$scfactor" ]; then
	scm=$(median_of "$scatter")
	if [ -z "$scm" ]; then
		echo "benchdiff: no samples collected for $scatter" >&2
		exit 1
	fi
	sclimit=$(awk -v b="$scbase" -v f="$scfactor" 'BEGIN {printf "%.0f", b*f}')
	echo "benchdiff: $scatter median ${scm} ns/op (baseline ${scbase}, limit ${sclimit})"
	if awk -v m="$scm" -v l="$sclimit" 'BEGIN {exit (m > l) ? 0 : 1}'; then
		echo "benchdiff: FAIL — $scatter median ${scm} ns/op exceeds limit ${sclimit} ns/op" >&2
		echo "BENCHDIFF_SUMMARY mode=scatter benchmark=$scatter median_ns_per_op=$scm baseline_ns_per_op=$scbase limit_ns_per_op=$sclimit result=fail"
		exit 1
	fi
	echo "BENCHDIFF_SUMMARY mode=scatter benchmark=$scatter median_ns_per_op=$scm baseline_ns_per_op=$scbase limit_ns_per_op=$sclimit result=pass"
fi

echo "benchdiff: OK"
