#!/bin/sh
# benchdiff.sh — guard the publish ingest hot path against regressions.
#
# Runs BenchmarkPublishIngest several times, takes the median ns/op, and
# compares it against the committed reference in scripts/bench_baseline.json.
# The check fails when the median exceeds baseline * allowed_regression.
#
# The baseline is machine-specific: absolute ns/op numbers move between
# hosts, so the allowed_regression factor is generous and the baseline
# should be refreshed (./scripts/benchdiff.sh --update) when benchmarking
# on a new reference machine or after an intentional perf change.
set -eu

cd "$(dirname "$0")/.."
baseline=scripts/bench_baseline.json
bench=BenchmarkPublishIngest
count=${BENCH_COUNT:-5}

median=$(go test ./internal/core/ -run '^$' -bench "${bench}\$" -count "$count" |
	awk -v b="$bench" '$1 ~ "^"b {print $3}' | sort -n |
	awk '{v[NR]=$1} END {if (NR==0) exit 1; print v[int((NR+1)/2)]}')

if [ -z "$median" ]; then
	echo "benchdiff: no samples collected for $bench" >&2
	exit 1
fi

if [ "${1:-}" = "--update" ]; then
	pre=$(awk -F'[:,]' '/"pre_change_ns_per_op"/ {gsub(/[^0-9]/,"",$2); print $2}' "$baseline" 2>/dev/null || true)
	cat >"$baseline" <<EOF
{
  "benchmark": "$bench",
  "ns_per_op": $median,
  "allowed_regression": 1.5,
  "pre_change_ns_per_op": ${pre:-0},
  "recorded": "$(date -u +%Y-%m-%d)"
}
EOF
	echo "benchdiff: baseline updated to $median ns/op"
	exit 0
fi

base=$(awk -F'[:,]' '/"ns_per_op"/ && !/pre_change/ {gsub(/[^0-9]/,"",$2); print $2}' "$baseline")
factor=$(awk -F'[:,]' '/"allowed_regression"/ {gsub(/[^0-9.]/,"",$2); print $2}' "$baseline")
pre=$(awk -F'[:,]' '/"pre_change_ns_per_op"/ {gsub(/[^0-9]/,"",$2); print $2}' "$baseline")

limit=$(awk -v b="$base" -v f="$factor" 'BEGIN {printf "%.0f", b*f}')
echo "benchdiff: $bench median ${median} ns/op (baseline ${base}, limit ${limit})"
if [ -n "$pre" ] && [ "$pre" -gt 0 ]; then
	awk -v p="$pre" -v m="$median" 'BEGIN {printf "benchdiff: %.2fx over the pre-sharding ingest pipeline (%d ns/op)\n", p/m, p}'
fi

if [ "$median" -gt "$limit" ]; then
	echo "benchdiff: FAIL — median ${median} ns/op exceeds limit ${limit} ns/op" >&2
	exit 1
fi
echo "benchdiff: OK"
