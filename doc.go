// Package gosoma is a from-scratch Go reproduction of "Enabling Performance
// Observability for Heterogeneous HPC Workflows with SOMA" (ICPP 2024):
// the SOMA service-based observability framework integrated with a
// RADICAL-Pilot-style workflow runtime, together with every substrate the
// paper depends on and a harness that regenerates every table and figure of
// its evaluation.
//
// The library lives under internal/ (see DESIGN.md for the module map);
// runnable entry points are cmd/somabench (regenerate the paper's tables
// and figures), cmd/somad (a standalone SOMA service over TCP), cmd/wfrun
// (a live monitored workflow on this machine), and the examples/ programs.
package gosoma
