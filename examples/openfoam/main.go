// OpenFOAM-style monitored ensemble, wired explicitly from the public API.
//
// This example builds what internal/experiments automates: a pilot on a
// Summit-shaped allocation, a SOMA service task scheduled before the
// application, the RP monitor and per-node hardware monitors, the TAU
// plugin, and a strong-scaling ensemble of MPI tasks. It runs in simulated
// time (a 10-node, ~45-minute workflow finishes in well under a second) and
// then answers the paper's questions from the SOMA data alone.
//
//	go run ./examples/openfoam
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/tau"
	"github.com/hpcobs/gosoma/internal/workload"
)

func main() {
	const (
		appNodes  = 4
		instances = 3 // instances per rank configuration
	)
	rankConfigs := []int{20, 41, 82, 164}

	eng := des.NewEngine() // simulated time; use des.NewRealRuntime() for wall time
	rng := stats.NewRNG(7)
	model := workload.DefaultOpenFOAM()

	// Platform + pilot: appNodes for simulation, one extra node for RP+SOMA.
	cluster := platform.NewCluster(appNodes+1, platform.Summit())
	sess := pilot.NewSession(eng, platform.NewBatchSystem(cluster))
	pl, err := sess.SubmitPilot(pilot.PilotDescription{Nodes: appNodes + 1})
	if err != nil {
		log.Fatal(err)
	}
	agent := pl.Agent
	somaNode := pl.Allocation.Nodes[appNodes]

	// SOMA service + client stub over the in-process transport.
	svc := core.NewService(core.ServiceConfig{RanksPerNamespace: 1, Clock: eng})
	addr, err := svc.Listen("inproc://openfoam-example")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	client, err := core.Connect(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Service tasks first: the SOMA service pinned to its node, then one
	// hardware-monitor client per application node (each on a reserved
	// core), exactly the Fig. 2 layout.
	mustSubmit := func(td pilot.TaskDescription) {
		if _, err := agent.Submit(td); err != nil {
			log.Fatal(err)
		}
	}
	mustSubmit(pilot.TaskDescription{
		Name: "soma.service", Service: true, Ranks: 4, PinNode: somaNode.Name,
		CPUActivity: 0.3,
	})
	for i := 0; i < appNodes; i++ {
		mustSubmit(pilot.TaskDescription{
			Name: "soma.hwmonitor", Service: true, Ranks: 1,
			PinNode: pl.Allocation.Nodes[i].Name, CPUActivity: 0.05,
		})
	}

	// Collector daemons: RP monitor (workflow namespace) and hardware
	// monitors (hardware namespace), sampling every 30 simulated seconds.
	rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
		Runtime: eng, Profiler: agent.Profiler(), Pub: client, IntervalSec: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	stopRP := rpm.Start()
	var stopHW []func()
	for i := 0; i < appNodes; i++ {
		hwm, err := core.NewHWMonitor(core.HWMonitorConfig{
			Runtime: eng,
			Source:  procfs.NewSampler(procfs.NewSyntheticSource(pl.Allocation.Nodes[i], eng, uint64(i))),
			Pub:     client, IntervalSec: 30,
		})
		if err != nil {
			log.Fatal(err)
		}
		stopHW = append(stopHW, hwm.Start())
	}

	// TAU plugin publishing per-rank profiles on task completion.
	plugin := tau.NewPlugin(func(n *conduit.Node) error {
		return client.Publish(core.NSPerformance, n)
	})

	// The ensemble: instances × rank configurations of the melt-pool model.
	for _, ranks := range rankConfigs {
		for i := 0; i < instances; i++ {
			ranks := ranks
			mustSubmit(pilot.TaskDescription{
				Name:  fmt.Sprintf("additivefoam.r%d.i%d", ranks, i),
				Ranks: ranks,
				Duration: func(ctx pilot.ExecContext) float64 {
					return model.ExecTime(ranks, workload.Placement{
						NodesSpanned: ctx.Placement.NodesSpanned(),
						Contention:   ctx.Placement.Contention,
						OwnDensity:   ctx.Placement.OwnDensity,
					}, rng)
				},
				OnComplete: func(t *pilot.Task) {
					if et := t.ExecTime(); et > 0 {
						hosts := t.Placement().NodeNames()
						var profs []tau.Profile
						for j, rp := range model.RankBreakdown(ranks, et, rng) {
							profs = append(profs, tau.Profile{
								TaskUID: t.UID, Host: hosts[j*len(hosts)/ranks],
								Rank: rp.Rank, Seconds: rp.Times,
							})
						}
						_ = plugin.Report(profs)
					}
				},
			})
		}
	}

	agent.OnQuiescent(func() {
		agent.StopServices()
		stopRP()
		for _, s := range stopHW {
			s()
		}
	})
	makespan := eng.Run()
	fmt.Printf("workflow finished: %d simulated seconds (%.0f min)\n\n", int(makespan), makespan/60)

	// Analysis — all answers come out of the SOMA service.
	analysis := core.Analysis{Q: core.LocalQuerier{Service: svc}}
	execTimes, err := analysis.ExecTimes()
	if err != nil {
		log.Fatal(err)
	}
	// Attribute exec times to rank configs via the TAU profiles' rank
	// counts — the performance namespace carries the task identifier.
	byRanks := map[int][]float64{}
	profs, _ := analysis.TAUProfiles()
	ranksOf := map[string]int{}
	for _, p := range profs {
		if p.Rank+1 > ranksOf[p.TaskUID] {
			ranksOf[p.TaskUID] = p.Rank + 1
		}
	}
	for uid, et := range execTimes {
		if r := ranksOf[uid]; r > 0 {
			byRanks[r] = append(byRanks[r], et)
		}
	}
	fmt.Println("strong scaling observed through SOMA:")
	var sorted []int
	for r := range byRanks {
		sorted = append(sorted, r)
	}
	sort.Ints(sorted)
	means := map[int]float64{}
	for _, r := range sorted {
		means[r] = stats.Mean(byRanks[r])
		fmt.Printf("  %3d ranks: mean %6.1f s over %d instances\n", r, means[r], len(byRanks[r]))
	}
	fmt.Printf("advisor suggests %d ranks per task for the next run\n",
		core.NewAdvisor().SuggestRanks(means))

	tp, _ := analysis.Throughput()
	fmt.Printf("workflow throughput: %.3f tasks/s\n", tp)
	util, _ := analysis.MeanClusterUtil()
	fmt.Printf("final mean node CPU utilization: %.1f%%\n", util)
}
