// Post-mortem analysis: online monitoring, offline answers.
//
// The paper argues online observability replaces the traditional
// post-mortem workflow — but operators still archive runs. This example
// shows both ends: a monitored workflow runs to completion, the SOMA
// service state is exported to a JSON snapshot on disk, and the *same*
// Analysis API then answers questions from the file alone, long after the
// service is gone.
//
//	go run ./examples/postmortem
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
	"github.com/hpcobs/gosoma/internal/stats"
)

func main() {
	snapPath := filepath.Join(os.TempDir(), "gosoma-postmortem.json")

	// --- Phase 1: a monitored workflow (simulated time). ---
	eng := des.NewEngine()
	cluster := platform.NewCluster(2, platform.Summit())
	agent, err := pilot.NewAgent(pilot.AgentConfig{Runtime: eng, Nodes: cluster.Nodes})
	if err != nil {
		log.Fatal(err)
	}
	svc := core.NewService(core.ServiceConfig{Clock: eng})
	addr, err := svc.Listen("inproc://postmortem-example")
	if err != nil {
		log.Fatal(err)
	}
	client, err := core.Connect(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
		Runtime: eng, Profiler: agent.Profiler(), Pub: client, IntervalSec: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	stopRP := rpm.Start()
	hwm, err := core.NewHWMonitor(core.HWMonitorConfig{
		Runtime: eng,
		Source:  procfs.NewSampler(procfs.NewSyntheticSource(cluster.Nodes[0], eng, 3)),
		Pub:     client, IntervalSec: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	stopHW := hwm.Start()

	agent.Start()
	for i := 0; i < 6; i++ {
		dur := 60 + 20*float64(i)
		if _, err := agent.Submit(pilot.TaskDescription{
			Ranks:    14,
			Duration: func(pilot.ExecContext) float64 { return dur },
		}); err != nil {
			log.Fatal(err)
		}
	}
	agent.OnQuiescent(func() { stopRP(); stopHW() })
	makespan := eng.Run()

	// Export and shut everything down — the "run is over" moment.
	snap, err := svc.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := snap.WriteFile(snapPath); err != nil {
		log.Fatal(err)
	}
	client.Close()
	svc.Close()
	fi, _ := os.Stat(snapPath)
	fmt.Printf("workflow finished at t=%.0fs; snapshot: %s (%d bytes)\n\n",
		makespan, snapPath, fi.Size())

	// --- Phase 2: offline analysis from the file alone. ---
	loaded, err := core.ReadSnapshot(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	analysis := core.Analysis{Q: loaded}

	uids, err := analysis.TaskUIDs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: %d tasks in the archived workflow namespace\n", len(uids))
	var execTimes []float64
	for _, uid := range uids {
		if et, err := analysis.ExecTime(uid); err == nil {
			execTimes = append(execTimes, et)
		}
	}
	s := stats.Summarize(execTimes)
	fmt.Printf("offline: execution times %s\n", s)
	if qw, err := analysis.QueueWaitStats(); err == nil && qw.N > 0 {
		fmt.Printf("offline: queue waits mean %.1fs, max %.1fs\n", qw.Mean, qw.Max)
	}
	if imb, err := analysis.UtilImbalance(0, 0); err == nil {
		fmt.Printf("offline: cross-node utilization imbalance (stddev) %.1f pp\n", imb)
	}
	series, err := analysis.CPUUtilSeries("cn0000")
	if err == nil {
		fmt.Printf("offline: %d archived hardware samples for cn0000\n", len(series))
	}
	_ = os.Remove(snapPath)
}
