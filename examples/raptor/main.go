// Function tasks at scale through the RAPTOR-style master.
//
// RP's RAPTOR subsystem executes language-level function tasks instead of
// executables; this example fans 500 Go functions out over a monitored
// two-node pilot, with the RP monitor publishing workflow-state statistics
// to SOMA throughout — demonstrating that function tasks are observable
// exactly like executable tasks (they share the task state machine).
//
//	go run ./examples/raptor
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/raptor"
)

func main() {
	const functions = 500

	eng := des.NewEngine()
	cluster := platform.NewCluster(2, platform.Summit())
	sess := pilot.NewSession(eng, platform.NewBatchSystem(cluster))
	pl, err := sess.SubmitPilot(pilot.PilotDescription{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}

	svc := core.NewService(core.ServiceConfig{RanksPerNamespace: 1, Clock: eng})
	addr, err := svc.Listen("inproc://raptor-example")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	client, err := core.Connect(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
		Runtime: eng, Profiler: pl.Agent.Profiler(), Pub: client, IntervalSec: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	stopRP := rpm.Start()

	// Fan the functions out; each models a short Python-function task
	// (2 simulated seconds), with every 50th failing to show error capture.
	var executed atomic.Int64
	fns := make([]func() error, functions)
	for i := range fns {
		i := i
		fns[i] = func() error {
			executed.Add(1)
			if i%50 == 49 {
				return fmt.Errorf("synthetic failure in function %d", i)
			}
			return nil
		}
	}
	master := raptor.NewMaster(pl.Agent)
	master.OnDone(func(results []raptor.Result) {
		failures := 0
		for _, r := range results {
			if r.Err != nil {
				failures++
			}
		}
		fmt.Printf("batch complete: %d functions, %d failures\n", len(results), failures)
		stopRP()
	})
	if _, err := master.SubmitFunctions(fns, 2.0); err != nil {
		log.Fatal(err)
	}
	makespan := eng.Run()

	fmt.Printf("executed %d functions on %d cores in %d simulated seconds\n",
		executed.Load(), pl.Allocation.TotalCores(), int(makespan))

	// Workflow-state history as SOMA observed it.
	analysis := core.Analysis{Q: core.LocalQuerier{Service: svc}}
	series, err := analysis.WorkflowSeries()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOMA observed %d workflow snapshots; trajectory of done counts:", len(series))
	for _, s := range series {
		fmt.Printf(" %d", s.Done)
	}
	fmt.Println()
	last := series[len(series)-1]
	fmt.Printf("final: done=%d failed=%d (throughput %.1f tasks/s)\n",
		last.Done, last.Failed, func() float64 { t, _ := analysis.Throughput(); return t }())
}
