// Quickstart: the smallest complete SOMA round trip.
//
// It starts a SOMA service over real TCP, connects a client stub, publishes
// monitoring data into two namespaces — an application-reported figure of
// merit (the paper's "scientific rate-of-progress") and a hardware sample
// from this machine's /proc — then queries everything back and prints the
// service-side statistics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/procfs"
)

func main() {
	// 1. Start the service. In a real deployment this is the long-running
	// SOMA service task on dedicated nodes (see cmd/somad); here it lives
	// in-process but speaks real TCP.
	svc := core.NewService(core.ServiceConfig{RanksPerNamespace: 1})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	fmt.Println("SOMA service at", addr)

	// 2. Connect a client stub — this is what runs inside an instrumented
	// application or monitor daemon.
	client, err := core.Connect(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// 3. Report application figures of merit through the instrumentation
	// API: a molecular-dynamics task self-reporting its scientific
	// rate-of-progress, attributed to its workflow task UID.
	clock := des.NewRealClock()
	reporter, err := core.NewAppReporter(client, clock, "task.000042")
	if err != nil {
		log.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if err := reporter.Report("atom_timesteps", float64(step)*1.82e9); err != nil {
			log.Fatal(err)
		}
	}
	// Arbitrary hierarchical data works too.
	extra := conduit.NewNode()
	extra.SetInt("md/config/atoms", 2_500_000)
	if err := client.Publish(core.NSApplication, extra); err != nil {
		log.Fatal(err)
	}

	// 4. Publish one real hardware sample from this machine's /proc, the
	// Listing 2 data model.
	if src, err := procfs.NewRealSource("", des.NewRealClock()); err == nil {
		sample, err := src.Sample()
		if err != nil {
			log.Fatal(err)
		}
		if err := client.Publish(core.NSHardware, sample.ToConduit()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("published /proc sample for host %s (%d processes, %d MB free)\n",
			sample.Host, sample.NumProcesses, sample.AvailableRAMMB)
	}

	// 5. Query it back through the same RPC API — including the derived
	// rate of progress.
	analysis := core.Analysis{Q: client}
	series, err := analysis.FOMSeries("task.000042", "atom_timesteps")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("figure-of-merit series: %d observations\n", len(series))
	if rate, err := analysis.FOMRate("task.000042", "atom_timesteps"); err == nil {
		fmt.Printf("scientific rate of progress: %.3g atom-timesteps/s\n", rate)
	}
	back, err := client.Query(core.NSApplication, "md")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("application namespace extras:\n", back.Format())

	// 6. Service-side statistics, one instance per namespace.
	stats, err := client.Stats()
	if err != nil {
		log.Fatal(err)
	}
	for _, ns := range core.Namespaces {
		st := stats[ns]
		fmt.Printf("instance %-12s publishes=%d leaves=%d\n", ns, st.Publishes, st.Leaves)
	}
}
