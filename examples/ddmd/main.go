// DeepDriveMD mini-app phases under EnTK with between-phase SOMA analysis.
//
// Four phases of the simulate → train → select → infer workflow run as one
// EnTK pipeline on a monitored pilot. After each phase, the SOMA advisor
// inspects the hardware namespace: the GPU-bound stages leave allocated CPU
// cores idle, so it recommends fanning training out across the free GPUs —
// the paper's adaptive-execution loop.
//
//	go run ./examples/ddmd
package main

import (
	"fmt"
	"log"

	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/entk"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
	"github.com/hpcobs/gosoma/internal/stats"
	"github.com/hpcobs/gosoma/internal/workload"
)

func main() {
	const (
		appNodes = 2
		phases   = 4
	)
	eng := des.NewEngine()
	rng := stats.NewRNG(9)
	model := workload.DefaultDDMD()

	cluster := platform.NewCluster(appNodes+1, platform.Summit())
	sess := pilot.NewSession(eng, platform.NewBatchSystem(cluster))
	pl, err := sess.SubmitPilot(pilot.PilotDescription{Nodes: appNodes + 1})
	if err != nil {
		log.Fatal(err)
	}
	agent := pl.Agent
	somaNode := pl.Allocation.Nodes[appNodes]

	// SOMA service task on the extra node + monitors.
	svc := core.NewService(core.ServiceConfig{RanksPerNamespace: 1, Clock: eng})
	addr, err := svc.Listen("inproc://ddmd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	client, err := core.Connect(addr, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	if _, err := agent.Submit(pilot.TaskDescription{
		Name: "soma.service", Service: true, Ranks: 2,
		PinNode: somaNode.Name, CPUActivity: 0.3,
	}); err != nil {
		log.Fatal(err)
	}
	rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
		Runtime: eng, Profiler: agent.Profiler(), Pub: client, IntervalSec: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	stopRP := rpm.Start()
	var stopHW []func()
	for i := 0; i < appNodes; i++ {
		hwm, err := core.NewHWMonitor(core.HWMonitorConfig{
			Runtime: eng,
			Source:  procfs.NewSampler(procfs.NewSyntheticSource(pl.Allocation.Nodes[i], eng, uint64(i))),
			Pub:     client, IntervalSec: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		stopHW = append(stopHW, hwm.Start())
	}

	// Build one pipeline of n phases; each phase is the four DDMD stages.
	// The advisor's suggestion is applied to the NEXT phase's training
	// stage — adaptive execution across phases.
	analysis := core.Analysis{Q: core.LocalQuerier{Service: svc}}
	advisor := core.NewAdvisor()
	trainTasks := 1
	p := &entk.Pipeline{Name: "ddmd"}

	mkPhase := func(phase int) {
		for _, stage := range []workload.DDMDStage{
			workload.StageSimulation, workload.StageTraining,
			workload.StageSelection, workload.StageAgent,
		} {
			stage := stage
			phase := phase
			s := &entk.Stage{Name: fmt.Sprintf("phase%d:%s", phase+1, stage)}
			count := model.TaskCount(stage, trainTasks)
			if stage == workload.StageTraining {
				// Late binding: the task list for training is rebuilt when
				// the stage is reached, using the advisor-updated count.
				count = -1
			}
			gpus := 0
			if model.UsesGPU(stage) {
				gpus = 1
			}
			build := func(n int) []pilot.TaskDescription {
				var tds []pilot.TaskDescription
				for k := 0; k < n; k++ {
					tt := trainTasks
					tds = append(tds, pilot.TaskDescription{
						Name: fmt.Sprintf("ph%d.%s.%d", phase+1, stage, k), Ranks: 1,
						CoresPerRank: 3, GPUsPerRank: gpus,
						CPUActivity: model.CPUActivity(stage),
						Duration: func(pilot.ExecContext) float64 {
							return model.StageTime(stage, 3, tt, rng)
						},
					})
				}
				return tds
			}
			if count > 0 {
				s.Tasks = build(count)
			} else {
				s.Tasks = build(trainTasks)
			}
			if stage == workload.StageAgent {
				s.PostExec = func(*entk.Stage, []*pilot.Task) {
					util, err := analysis.MeanClusterUtil()
					if err != nil {
						return
					}
					freeGPUs := somaNode.Spec.GPUs // SOMA node GPUs sit idle
					next := advisor.SuggestTrainTasks(trainTasks, util, freeGPUs)
					fmt.Printf("phase %d done: CPU util %.1f%%, %d free GPUs → advisor: train with %d tasks\n",
						phase+1, util, freeGPUs, next)
					if phase+1 < phases {
						trainTasks = next
						// Rebuild the NEXT phase's training stage with the
						// new fan-out (its tasks are built lazily below).
						trainStage := p.Stages[(phase+1)*4+1]
						trainStage.Tasks = build(trainTasks)
					}
				}
			}
			p.AddStage(s)
		}
	}
	for ph := 0; ph < phases; ph++ {
		mkPhase(ph)
	}

	am := entk.NewAppManager(sess, pl)
	am.OnAllDone(func() {
		agent.StopServices()
		stopRP()
		for _, s := range stopHW {
			s()
		}
	})
	if err := am.Run([]*entk.Pipeline{p}); err != nil {
		log.Fatal(err)
	}
	makespan := eng.Run()

	fmt.Printf("\n%d phases finished in %d simulated seconds\n", phases, int(makespan))
	for ph := 0; ph < phases; ph++ {
		trainStage := p.Stages[ph*4+1]
		var times []float64
		for _, t := range trainStage.Results() {
			times = append(times, t.ExecTime())
		}
		fmt.Printf("phase %d training: %d task(s), stage mean %.0f s\n",
			ph+1, len(times), stats.Mean(times))
	}
}
