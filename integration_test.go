package gosoma_test

// Top-level integration test: the full stack on the wall clock over real
// TCP — a SOMA service daemon, a pilot executing tasks in real time, the RP
// and hardware monitor daemons, the TAU plugin, an application reporter,
// and the analysis layer reading everything back through RPC. This is the
// deployment shape of cmd/wfrun, asserted end to end.

import (
	"fmt"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/des"
	"github.com/hpcobs/gosoma/internal/pilot"
	"github.com/hpcobs/gosoma/internal/platform"
	"github.com/hpcobs/gosoma/internal/procfs"
	"github.com/hpcobs/gosoma/internal/tau"
)

func TestRealTimeEndToEndOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time integration in -short mode")
	}
	rt := des.NewRealRuntime()
	defer rt.Shutdown()

	// SOMA service over TCP.
	svc := core.NewService(core.ServiceConfig{RanksPerNamespace: 2})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	client, err := core.Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.EnableAsync(256)

	// Pilot on a Summit-shaped allocation, wall-clock execution.
	batch := platform.NewBatchSystem(platform.NewCluster(2, platform.Summit()))
	sess := pilot.NewSession(rt, batch)
	pl, err := sess.SubmitPilot(pilot.PilotDescription{
		Nodes: 2, BootstrapSec: 0.02, SchedOverheadSec: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	pl.Agent.StartHeartbeats(0.05)
	watcher := sess.WatchPilot(pl, 5, 0.1, nil)
	defer watcher.Stop()

	// Monitor daemons.
	rpm, err := core.NewRPMonitor(core.RPMonitorConfig{
		Runtime: rt, Profiler: pl.Agent.Profiler(), Pub: client, IntervalSec: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopRP := rpm.Start()
	hwSrc, err := procfs.NewRealSource("", rt)
	if err != nil {
		t.Skipf("no /proc on this platform: %v", err)
	}
	hwm, err := core.NewHWMonitor(core.HWMonitorConfig{
		Runtime: rt, Source: procfs.NewSampler(hwSrc), Pub: client, IntervalSec: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopHW := hwm.Start()

	// TAU plugin publishing through the same client.
	plugin := tau.NewPlugin(func(n *conduit.Node) error {
		return client.Publish(core.NSPerformance, n)
	})

	// A small heterogeneous workload: each task self-reports a figure of
	// merit and a per-rank profile.
	tm := sess.NewTaskManager(pl)
	var tds []pilot.TaskDescription
	for i := 0; i < 6; i++ {
		i := i
		tds = append(tds, pilot.TaskDescription{
			Name:  fmt.Sprintf("app-%d", i),
			Ranks: 4, Duration: func(pilot.ExecContext) float64 { return 0.05 },
			OutputStagingSec: 0.005,
			Func: func(ctx pilot.ExecContext) error {
				rep, err := core.NewAppReporter(client, rt, ctx.Task.UID)
				if err != nil {
					return err
				}
				if err := rep.Report("steps", float64(100*i)); err != nil {
					return err
				}
				return plugin.Report([]tau.Profile{{
					TaskUID: ctx.Task.UID, Host: "vm", Rank: 0,
					Seconds: map[string]float64{"MPI_Recv": 0.02, ".TAU application": 0.03},
				}})
			},
		})
	}
	tasks, err := tm.Submit(tds)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { tm.WaitAll(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workflow timed out")
	}
	stopRP()
	stopHW()
	// The client is async: the monitors' shutdown collections are queued to
	// a background sender, so flush before querying what they published.
	client.Flush()

	// Everything must be observable through the RPC analysis layer.
	analysis := core.Analysis{Q: client}
	for _, task := range tasks {
		if task.State() != pilot.StateDone {
			t.Fatalf("%s = %s (%v)", task.UID, task.State(), task.Err())
		}
		et, err := analysis.ExecTime(task.UID)
		if err != nil {
			t.Fatalf("%s exec time: %v", task.UID, err)
		}
		if et < 0.04 || et > 0.5 {
			t.Fatalf("%s exec time %.3f implausible", task.UID, et)
		}
	}
	profs, err := analysis.TAUProfiles()
	if err != nil || len(profs) != len(tasks) {
		t.Fatalf("tau profiles = %d, %v", len(profs), err)
	}
	fomTasks, err := analysis.FOMTasks()
	if err != nil || len(fomTasks) != len(tasks) {
		t.Fatalf("fom tasks = %d, %v", len(fomTasks), err)
	}
	hosts, err := analysis.Hosts()
	if err != nil || len(hosts) != 1 {
		t.Fatalf("hosts = %v, %v", hosts, err)
	}
	if watcher.Fired() {
		t.Fatal("healthy pilot declared dead")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range core.Namespaces {
		if stats[ns].Publishes == 0 {
			t.Fatalf("namespace %s saw no traffic", ns)
		}
	}
	// Post-mortem snapshot still answers after everything stops.
	snap, err := svc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	offline := core.Analysis{Q: snap}
	if uids, err := offline.TaskUIDs(); err != nil || len(uids) < len(tasks) {
		t.Fatalf("offline uids = %v, %v", uids, err)
	}
}
