//go:build chaos

package gosoma_test

// Chaos soak (make chaos): the publish workload over real TCP with a
// seeded fault-injection transport severing, corrupting, black-holing,
// dropping and delaying frames on both sides of the wire, while the
// resilience stack (mercury retries + breaker, core publish spill)
// rides it out. The asserted outcome is invariant across schedules:
//
//   zero loss     — every publish is eventually visible in the merged tree
//                   (each lands on a distinct leaf, so nothing can hide
//                   behind last-writer-wins);
//   zero deadlock — the storm, the heal phase, and every Close complete
//                   within the test timeout.
//
// Schedules are seeded (same seed = same fault decision sequence), so
// `go test -count=3 -tags chaos` re-runs the same storms deterministically.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hpcobs/gosoma/internal/conduit"
	"github.com/hpcobs/gosoma/internal/core"
	"github.com/hpcobs/gosoma/internal/faults"
	"github.com/hpcobs/gosoma/internal/mercury"
)

const (
	chaosWorkers = 4
	chaosIters   = 100
)

func chaosPolicy() *mercury.CallPolicy {
	return &mercury.CallPolicy{
		ConnectTimeout: 2 * time.Second,
		AttemptTimeout: 250 * time.Millisecond,
		MaxRetries:     4,
		Backoff:        mercury.Backoff{Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
		// Every chaos publish goes to its own leaf, so re-sending after a
		// lost response is safe (duplicate merges are idempotent).
		Idempotent:       func(string) bool { return true },
		FailureThreshold: 8,
		OpenFor:          100 * time.Millisecond,
	}
}

func TestChaosPublishStorm(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaosStorm(t, seed)
		})
	}
}

func runChaosStorm(t *testing.T, seed int64) {
	tr := faults.New(faults.Config{
		Seed:          seed,
		SeverProb:     0.02,
		CorruptProb:   0.01,
		BlackholeProb: 0.01,
		DropProb:      0.05,
		DelayProb:     0.15,
		DelayMin:      time.Millisecond,
		DelayMax:      15 * time.Millisecond,
	})

	svc := core.NewService(core.ServiceConfig{
		RanksPerNamespace: 2,
		EngineOptions:     []mercury.Option{mercury.WithInjector(tr)},
	})
	addr, err := svc.Listen("tcp://127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// Client-side engine shares the transport so request frames are faulted
	// too, not just responses.
	clientEngine := mercury.NewEngine(mercury.WithInjector(tr))
	defer clientEngine.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A live subscription through the storm: its redial loop must neither
	// deadlock nor leak; updates lost while disconnected are by design.
	subClient, err := core.ConnectPolicy(addr, clientEngine, chaosPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer subClient.Close()
	sub, err := subClient.Subscribe(ctx, core.NSWorkflow, "")
	if err != nil {
		t.Fatal(err)
	}
	var updates int
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		for range sub.C {
			updates++
		}
	}()

	// The storm: every worker publishes chaosIters distinct leaves through
	// its own spill-enabled client, retrying anything the degradation layer
	// does not absorb.
	clients := make([]*core.Client, chaosWorkers)
	for w := range clients {
		c, err := core.ConnectPolicy(addr, clientEngine, chaosPolicy())
		if err != nil {
			t.Fatal(err)
		}
		c.EnableSpill(chaosIters)
		clients[w] = c
		defer c.Close()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, chaosWorkers)
	for w := 0; w < chaosWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < chaosIters; i++ {
				n := conduit.NewNode()
				n.SetInt(fmt.Sprintf("chaos/w%d/i%03d", w, i), int64(i))
				for {
					err := clients[w].Publish(core.NSWorkflow, n)
					if err == nil {
						break
					}
					// Definitive verdict (e.g. the server shed an expired
					// attempt): the handler never fired, re-publishing is
					// safe. Transient errors were already absorbed by the
					// spill, so anything reaching here is retried whole.
					select {
					case <-ctx.Done():
						errCh <- fmt.Errorf("worker %d gave up at i=%d: %v", w, i, err)
						return
					case <-time.After(10 * time.Millisecond):
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Heal: stop injecting, drain every spill buffer to the service.
	tr.SetEnabled(false)
	for w, c := range clients {
		if err := c.DrainSpill(ctx); err != nil {
			t.Fatalf("worker %d drain: %v (spill %+v)", w, err, c.Spill())
		}
	}

	// Zero loss: a clean verification client (no injector) must see every
	// leaf with its value.
	verify, err := core.Connect(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer verify.Close()
	tree, err := verify.Query(core.NSWorkflow, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < chaosWorkers; w++ {
		wt, ok := tree.Get(fmt.Sprintf("w%d", w))
		if !ok {
			t.Fatalf("worker %d subtree missing entirely", w)
		}
		for i := 0; i < chaosIters; i++ {
			v, ok := wt.Int(fmt.Sprintf("i%03d", i))
			if !ok {
				t.Errorf("seed %d: lost publish w%d/i%03d", seed, w, i)
			} else if v != int64(i) {
				t.Errorf("seed %d: w%d/i%03d = %d, want %d", seed, w, i, v, i)
			}
		}
	}
	if t.Failed() {
		t.Fatalf("faults injected: %+v", tr.Stats())
	}

	// Zero deadlock on the stream side: the subscription closes cleanly.
	sub.Close()
	select {
	case <-subDone:
	case <-time.After(10 * time.Second):
		t.Fatal("subscription consumer did not finish")
	}
	st := tr.Stats()
	if st.Delays+st.Drops+st.Severs+st.Corrupts+st.Blackholes == 0 {
		t.Fatal("storm injected no faults — chaos config inert, assertions vacuous")
	}
	t.Logf("seed %d: faults=%+v, live updates received=%d", seed, st, updates)
}
