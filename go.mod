module github.com/hpcobs/gosoma

go 1.22
